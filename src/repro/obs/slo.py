"""Declarative SLOs over the metrics registry: targets, budgets, burn rates.

The ROADMAP's serving-tier item asks for an *SLO gate*: a machine-checkable
statement of what "fast enough" means for the query service, evaluated
against the same :class:`~repro.obs.metrics.MetricsRegistry` histograms
the serving tier already feeds.  This module is that statement and its
evaluator:

- :class:`SLOSpec` — one objective, declaratively: a latency histogram
  (``service.query_ms``), percentile targets (``p99 <= 250 ms``), and an
  optional availability objective ("99.9% of requests complete under
  500 ms") with the error budget that implies.
- :func:`load_slo_path` — specs from a TOML file (``slo.toml``), via
  :mod:`tomllib` on Python ≥ 3.11 and a minimal built-in subset parser
  before that (the repo adds no dependencies).
- :func:`evaluate` / :func:`evaluate_summary` — one-shot evaluation over
  a live registry (exact, bucket-level) or a saved ``Recorder.summary()``
  JSON (percentile trio only).  Results carry per-check verdicts and
  remaining error budget; ``repro slo-check`` turns them into an exit
  code.
- :class:`BurnRateMonitor` — windowed evaluation for a long-running
  process: periodic samples of (total, good) counts, burn rate per
  window (budget consumed / budget available, 1.0 = exactly on budget),
  and the multi-window alert rule (every window burning) that separates
  a real regression from a blip.
- :func:`export_slo_gauges` — verdicts, observed values, and budgets as
  registry gauges, so one OpenMetrics scrape carries both the raw
  histograms and the SLO view of them.

Availability is counted bucket-wise: an observation is *good* when it
lands in a bucket whose upper bound is ≤ the threshold, so thresholds
aligned with bucket bounds (the ``latency-ms`` preset) are exact and
misaligned thresholds are *conservative* (the straddling bucket counts
as bad).  Empty histograms follow the registry's ``NaN`` sentinel:
checks report "no observations" and pass vacuously rather than
inventing a latency.

Like the rest of :mod:`repro.obs` this module is stdlib-only and part of
the ``mypy --strict`` typing gate.
"""

from __future__ import annotations

import os
import time
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from math import isnan, nan
from typing import Any, Iterable, Mapping

from .metrics import Histogram, MetricsRegistry

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 CI
    tomllib = None  # type: ignore[assignment]

__all__ = [
    "LatencyTarget",
    "AvailabilityObjective",
    "SLOSpec",
    "CheckResult",
    "SLOResult",
    "load_slo_path",
    "parse_slo_data",
    "evaluate",
    "evaluate_summary",
    "BurnRateMonitor",
    "export_slo_gauges",
    "render_slo_text",
]


# -- spec ---------------------------------------------------------------------


@dataclass(frozen=True)
class LatencyTarget:
    """One percentile target: the *percentile*-th observed latency must
    not exceed *threshold_ms*."""

    percentile: float
    threshold_ms: float

    def __post_init__(self) -> None:
        if not 0 < self.percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {self.percentile}")
        if self.threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")


@dataclass(frozen=True)
class AvailabilityObjective:
    """At least *objective* (a fraction, e.g. ``0.999``) of observations
    must be good — i.e. complete within *threshold_ms*.  The implied
    error budget is ``1 - objective``."""

    objective: float
    threshold_ms: float

    def __post_init__(self) -> None:
        if not 0 < self.objective < 1:
            raise ValueError(f"objective must be in (0, 1), got {self.objective}")
        if self.threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


@dataclass(frozen=True)
class SLOSpec:
    """One SLO: a named bundle of targets over one latency histogram."""

    name: str
    metric: str
    latency: tuple[LatencyTarget, ...] = ()
    availability: AvailabilityObjective | None = None
    #: nominal evaluation window for burn-rate accounting, seconds
    window_s: float = 3600.0

    def __post_init__(self) -> None:
        if not self.name or not self.metric:
            raise ValueError("an SLO needs a name and a metric")
        if not self.latency and self.availability is None:
            raise ValueError(
                f"SLO {self.name!r} declares no latency targets and no "
                "availability objective"
            )


# -- results ------------------------------------------------------------------


@dataclass(frozen=True)
class CheckResult:
    """One verdict: a latency or availability check against one SLO."""

    slo: str
    metric: str
    kind: str  # "latency" | "availability"
    target: str  # human-readable, e.g. "p99 <= 250ms"
    objective: float  # threshold_ms (latency) or fraction (availability)
    observed: float  # observed percentile ms / good fraction (NaN = no data)
    ok: bool
    #: fraction of the error budget left (availability checks only;
    #: negative = budget blown, NaN = no data)
    budget_remaining: float = nan
    note: str = ""


@dataclass(frozen=True)
class SLOResult:
    """All checks from one evaluation; ``ok`` is the AND of them."""

    checks: tuple[CheckResult, ...]
    source: str = "registry"  # "registry" | "summary"

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> tuple[CheckResult, ...]:
        return tuple(c for c in self.checks if not c.ok)


# -- TOML loading -------------------------------------------------------------


def _parse_toml_value(text: str) -> Any:
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    if text == "true":
        return True
    if text == "false":
        return False
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_parse_toml_value(part) for part in inner.split(",")]
    try:
        return int(text)
    except ValueError:
        return float(text)


def _descend(node: dict[str, Any], path: list[str]) -> dict[str, Any]:
    for part in path:
        nxt = node.get(part)
        if isinstance(nxt, list):
            nxt = nxt[-1]
        if nxt is None:
            nxt = node[part] = {}
        if not isinstance(nxt, dict):
            raise ValueError(f"TOML path component {part!r} is not a table")
        node = nxt
    return node


def _parse_minimal_toml(text: str) -> dict[str, Any]:
    """A TOML subset (tables, arrays of tables, scalar/array values) for
    Python < 3.11 where :mod:`tomllib` does not exist.  Enough for
    ``slo.toml``; not a general parser."""
    root: dict[str, Any] = {}
    current = root
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[["):
            end = line.find("]]")
            if end < 0:
                raise ValueError(f"slo.toml line {lineno}: unterminated [[table]]")
            path = [p.strip() for p in line[2:end].split(".")]
            parent = _descend(root, path[:-1])
            arr = parent.setdefault(path[-1], [])
            if not isinstance(arr, list):
                raise ValueError(f"slo.toml line {lineno}: {path[-1]!r} is not an array")
            current = {}
            arr.append(current)
        elif line.startswith("["):
            end = line.find("]")
            if end < 0:
                raise ValueError(f"slo.toml line {lineno}: unterminated [table]")
            path = [p.strip() for p in line[1:end].split(".")]
            parent = _descend(root, path[:-1])
            current = parent.setdefault(path[-1], {})
            if not isinstance(current, dict):
                raise ValueError(f"slo.toml line {lineno}: {path[-1]!r} is not a table")
        else:
            key, sep, value = line.partition("=")
            if not sep:
                raise ValueError(f"slo.toml line {lineno}: expected key = value")
            current[key.strip()] = _parse_toml_value(value)
    return root


def parse_slo_data(data: Mapping[str, Any]) -> list[SLOSpec]:
    """Parsed-TOML dict → specs.  Expects ``[[slo]]`` entries with
    ``name``/``metric``, optional ``[[slo.latency]]`` targets and an
    optional ``[slo.availability]`` table."""
    entries = data.get("slo")
    if not isinstance(entries, list) or not entries:
        raise ValueError("SLO file declares no [[slo]] entries")
    specs: list[SLOSpec] = []
    for entry in entries:
        if not isinstance(entry, Mapping):
            raise ValueError("each [[slo]] entry must be a table")
        latency = tuple(
            LatencyTarget(
                percentile=float(t["percentile"]),
                threshold_ms=float(t["threshold_ms"]),
            )
            for t in entry.get("latency", ())
        )
        avail_raw = entry.get("availability")
        availability = (
            AvailabilityObjective(
                objective=float(avail_raw["objective"]),
                threshold_ms=float(avail_raw["threshold_ms"]),
            )
            if avail_raw is not None
            else None
        )
        specs.append(
            SLOSpec(
                name=str(entry.get("name", "")),
                metric=str(entry.get("metric", "")),
                latency=latency,
                availability=availability,
                window_s=float(entry.get("window_s", 3600.0)),
            )
        )
    return specs


def load_slo_path(path: "str | os.PathLike[str]") -> list[SLOSpec]:
    """Load SLO specs from a TOML file (tomllib when available, the
    built-in subset parser on Python < 3.11)."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    data: Mapping[str, Any]
    if tomllib is not None:
        data = tomllib.loads(text)
    else:  # pragma: no cover - exercised on 3.10 CI
        data = _parse_minimal_toml(text)
    return parse_slo_data(data)


# -- evaluation ---------------------------------------------------------------


def _good_count(hist: Histogram, threshold_ms: float) -> int:
    """Observations in buckets wholly ≤ *threshold_ms* (exact when the
    threshold sits on a bucket bound, conservative otherwise)."""
    return sum(hist.counts[: bisect_right(hist.bounds, threshold_ms)])


def _latency_check(
    spec: SLOSpec, target: LatencyTarget, observed: float, count: int
) -> CheckResult:
    label = f"p{target.percentile:g} <= {target.threshold_ms:g}ms"
    if count == 0 or isnan(observed):
        return CheckResult(
            slo=spec.name,
            metric=spec.metric,
            kind="latency",
            target=label,
            objective=target.threshold_ms,
            observed=nan,
            ok=True,
            note="no observations",
        )
    return CheckResult(
        slo=spec.name,
        metric=spec.metric,
        kind="latency",
        target=label,
        objective=target.threshold_ms,
        observed=observed,
        ok=observed <= target.threshold_ms,
    )


def _availability_check(
    spec: SLOSpec, avail: AvailabilityObjective, good: int, count: int
) -> CheckResult:
    label = f"{avail.objective:.4%} <= {avail.threshold_ms:g}ms"
    if count == 0:
        return CheckResult(
            slo=spec.name,
            metric=spec.metric,
            kind="availability",
            target=label,
            objective=avail.objective,
            observed=nan,
            ok=True,
            note="no observations",
        )
    fraction = good / count
    bad_fraction = 1.0 - fraction
    budget_remaining = 1.0 - bad_fraction / avail.error_budget
    return CheckResult(
        slo=spec.name,
        metric=spec.metric,
        kind="availability",
        target=label,
        objective=avail.objective,
        observed=fraction,
        ok=fraction >= avail.objective,
        budget_remaining=budget_remaining,
    )


def evaluate(specs: Iterable[SLOSpec], registry: MetricsRegistry) -> SLOResult:
    """Evaluate *specs* against a live registry (bucket-exact)."""
    hists = {
        name: inst
        for kind, name, inst in registry.items()
        if kind == "histogram" and isinstance(inst, Histogram)
    }
    checks: list[CheckResult] = []
    for spec in specs:
        hist = hists.get(spec.metric)
        if hist is None:
            hist = Histogram()  # empty — every check reports "no observations"
        for target in spec.latency:
            checks.append(
                _latency_check(
                    spec, target, hist.percentile(target.percentile), hist.count
                )
            )
        if spec.availability is not None:
            checks.append(
                _availability_check(
                    spec,
                    spec.availability,
                    _good_count(hist, spec.availability.threshold_ms),
                    hist.count,
                )
            )
    return SLOResult(checks=tuple(checks), source="registry")


def evaluate_summary(
    specs: Iterable[SLOSpec], summary: Mapping[str, Any]
) -> SLOResult:
    """Evaluate against a saved ``Recorder.summary()`` dict.

    Summaries carry only the p50/p90/p99 trio, so latency targets must
    use those percentiles; availability objectives need bucket counts
    the summary collapsed away and are reported as skipped (``ok`` with
    a note) rather than silently passed off as evaluated.
    """
    hist_summaries = summary.get("histograms", {})
    checks: list[CheckResult] = []
    for spec in specs:
        entry = hist_summaries.get(spec.metric, {})
        count = int(entry.get("count", 0))
        for target in spec.latency:
            key = f"p{target.percentile:g}"
            if key not in entry and count > 0:
                raise ValueError(
                    f"SLO {spec.name!r}: summary for {spec.metric!r} has no "
                    f"{key} (summaries carry only p50/p90/p99)"
                )
            observed = float(entry.get(key, nan))
            checks.append(_latency_check(spec, target, observed, count))
        if spec.availability is not None:
            label = (
                f"{spec.availability.objective:.4%} "
                f"<= {spec.availability.threshold_ms:g}ms"
            )
            checks.append(
                CheckResult(
                    slo=spec.name,
                    metric=spec.metric,
                    kind="availability",
                    target=label,
                    objective=spec.availability.objective,
                    observed=nan,
                    ok=True,
                    note="not computable from a summary (needs bucket counts)",
                )
            )
    return SLOResult(checks=tuple(checks), source="summary")


# -- windowed burn-rate monitoring --------------------------------------------


class BurnRateMonitor:
    """Multi-window burn-rate accounting for one SLO's availability
    objective over a long-running registry.

    The registry's histograms are cumulative, so the monitor keeps
    periodic ``(t, total, good)`` samples and differences them per
    window: the burn rate over a window is the bad fraction observed in
    it divided by the error budget — ``1.0`` means spending exactly the
    budget, sustained; higher is faster.  The standard alert rule
    (:meth:`alerting`) requires **every** window to burn above the
    factor, so a short spike inside an otherwise-healthy hour does not
    page but a sustained regression shows up in minutes.
    """

    def __init__(
        self,
        spec: SLOSpec,
        registry: MetricsRegistry,
        windows_s: Iterable[float] = (300.0, 3600.0),
    ) -> None:
        if spec.availability is None:
            raise ValueError(
                f"SLO {spec.name!r} has no availability objective to burn"
            )
        self.spec = spec
        self.availability = spec.availability
        self.registry = registry
        self.windows_s = tuple(sorted(float(w) for w in windows_s))
        if not self.windows_s or self.windows_s[0] <= 0:
            raise ValueError("windows_s must be positive")
        self._samples: deque[tuple[float, int, int]] = deque()

    def sample(self, now: float | None = None) -> tuple[float, int, int]:
        """Record one ``(t, total, good)`` observation of the metric."""
        t = time.monotonic() if now is None else now
        hist = self.registry.histogram(self.spec.metric)
        entry = (t, hist.count, _good_count(hist, self.availability.threshold_ms))
        self._samples.append(entry)
        horizon = t - 2 * self.windows_s[-1]
        while len(self._samples) > 2 and self._samples[1][0] <= horizon:
            self._samples.popleft()
        return entry

    def burn_rate(self, window_s: float, now: float | None = None) -> float:
        """Budget-consumption rate over the trailing *window_s* seconds
        (``0.0`` when the window saw no traffic or has no samples)."""
        if not self._samples:
            return 0.0
        t = self._samples[-1][0] if now is None else now
        cutoff = t - window_s
        base = self._samples[0]
        for entry in self._samples:
            if entry[0] <= cutoff:
                base = entry
            else:
                break
        t1, total1, good1 = self._samples[-1]
        t0, total0, good0 = base
        d_total = total1 - total0
        if d_total <= 0:
            return 0.0
        bad_fraction = (d_total - (good1 - good0)) / d_total
        return bad_fraction / self.availability.error_budget

    def burn_rates(self, now: float | None = None) -> dict[float, float]:
        return {w: self.burn_rate(w, now) for w in self.windows_s}

    def alerting(self, factor: float = 1.0, now: float | None = None) -> bool:
        """True when **every** window burns above *factor* — the
        multi-window rule that needs both "burning now" (short window)
        and "burning for a while" (long window)."""
        rates = self.burn_rates(now)
        return bool(rates) and all(rate > factor for rate in rates.values())

    def export_gauges(
        self, metrics: MetricsRegistry | None = None, prefix: str = "slo"
    ) -> None:
        """Burn rates as ``<prefix>.<name>.burn_rate.<window>s`` gauges."""
        target = metrics if metrics is not None else self.registry
        for window, rate in self.burn_rates().items():
            target.set_gauge(f"{prefix}.{self.spec.name}.burn_rate.{window:g}s", rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BurnRateMonitor<{self.spec.name}, windows={self.windows_s}, "
            f"{len(self._samples)} samples>"
        )


# -- exposition ---------------------------------------------------------------


def export_slo_gauges(
    result: SLOResult, metrics: MetricsRegistry, prefix: str = "slo"
) -> None:
    """Write one evaluation's verdicts into *metrics* as gauges, so the
    OpenMetrics exposition carries the SLO view next to the raw
    histograms: per-SLO ``<prefix>.<name>.ok`` plus per-check observed
    values and (for availability) remaining budget."""
    ok_by_slo: dict[str, bool] = {}
    for check in result.checks:
        ok_by_slo[check.slo] = ok_by_slo.get(check.slo, True) and check.ok
        base = f"{prefix}.{check.slo}"
        if check.kind == "latency":
            pct = check.target.split(" ", 1)[0]  # "p99"
            metrics.set_gauge(f"{base}.{pct}_ms", check.observed)
            metrics.set_gauge(f"{base}.{pct}_ok", 1.0 if check.ok else 0.0)
        else:
            metrics.set_gauge(f"{base}.availability", check.observed)
            metrics.set_gauge(f"{base}.budget_remaining", check.budget_remaining)
    for slo_name, ok in ok_by_slo.items():
        metrics.set_gauge(f"{prefix}.{slo_name}.ok", 1.0 if ok else 0.0)


def render_slo_text(result: SLOResult) -> str:
    """The evaluation as aligned one-line-per-check text (CLI output)."""
    lines = []
    for check in result.checks:
        mark = "ok " if check.ok else "FAIL"
        if check.kind == "latency":
            observed = "-" if isnan(check.observed) else f"{check.observed:.3f}ms"
        else:
            observed = "-" if isnan(check.observed) else f"{check.observed:.4%}"
        note = f"  ({check.note})" if check.note else ""
        lines.append(
            f"[{mark}] {check.slo}: {check.metric} {check.target} "
            f"observed={observed}{note}"
        )
    verdict = "PASS" if result.ok else "FAIL"
    lines.append(
        f"SLO check ({result.source}): {verdict} — "
        f"{len(result.checks) - len(result.failures)}/{len(result.checks)} checks ok"
    )
    return "\n".join(lines)

"""The always-on flight recorder and the structured slow-query log.

A :class:`~repro.obs.trace.TraceRecorder` grows without bound — fine for
one benchmarked solve, wrong for a serving process that must stay up for
days.  :class:`FlightRecorder` is the production variant: the same span
surface (it *is* a ``TraceRecorder``, so ``Recorder(trace=...)``,
``write_trace``, ``repro report`` and the Chrome export all work
unchanged) over a **bounded ring buffer** of preallocated slots.  Slot
writes are plain list-item assignments — recording never grows a
container, so memory is fixed at construction and the steady-state cost
per event matches the unbounded recorder's append.  When the ring wraps,
the oldest events fall off: at any moment the recorder holds the *last*
``capacity`` events — the black-box flight recording you pull **after**
something went wrong.

Anomaly triggers close the loop: a :class:`FlightTrigger` watches
closing spans for a latency threshold (optionally filtered to one span
name prefix) and fires an action — dump the ring to a Chrome-trace JSON
path, call back into user code, or both — with a cooldown so a latency
storm produces one dump, not thousands.

:class:`SlowQueryLog` is the request-granular companion the serving tier
writes: a bounded, JSONL-exportable log of every query whose latency
crossed a threshold, carrying the request id, the plan shape, the
stepper spec, the work/exchange counters, and a flight-recorder snapshot
— everything "why was *this* query slow?" needs, captured at the moment
it happened.  ``repro report`` renders it and ``repro slo-check`` ships
it as the CI artifact.

Like the rest of :mod:`repro.obs` this module is stdlib-only and part of
the ``mypy --strict`` typing gate.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Callable, Iterable, Iterator, Mapping

from .trace import TraceRecorder, _Event, _json_safe

__all__ = [
    "DEFAULT_FLIGHT_CAPACITY",
    "FlightTrigger",
    "FlightRecorder",
    "SlowQueryLog",
]

#: default ring capacity — ~4k events is minutes of serving-tier spans
#: at a few hundred bytes each, far below one cached distance vector
DEFAULT_FLIGHT_CAPACITY = 4096

#: trigger-action signature: (recorder, offending span name, duration ms)
TriggerAction = Callable[["FlightRecorder", str, float], None]


class _Ring:
    """Fixed-capacity event storage: preallocated slots, index arithmetic.

    Implements the :class:`~repro.obs.trace._EventStore` surface the
    base recorder iterates, so every export/report path reads the ring
    transparently (in chronological order).  ``total`` counts every
    event ever recorded; ``total - len(ring)`` is what wrapped away.
    """

    __slots__ = ("capacity", "total", "_slots", "_head")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.total = 0
        self._slots: list[_Event | None] = [None] * capacity
        self._head = 0  # next slot to write

    def append(self, event: _Event) -> None:
        self._slots[self._head] = event
        self._head += 1
        if self._head == self.capacity:
            self._head = 0
        self.total += 1

    def clear(self) -> None:
        for i in range(self.capacity):
            self._slots[i] = None
        self._head = 0
        self.total = 0

    def __len__(self) -> int:
        return min(self.total, self.capacity)

    def __iter__(self) -> Iterator[_Event]:
        if self.total <= self.capacity:
            for i in range(self.total):
                event = self._slots[i]
                assert event is not None
                yield event
            return
        for i in range(self.capacity):
            event = self._slots[(self._head + i) % self.capacity]
            assert event is not None
            yield event


class FlightTrigger:
    """Fire an action when a closing span crosses a latency threshold.

    Parameters
    ----------
    threshold_ms:
        Minimum span duration that counts as an anomaly.
    span:
        Span-name prefix filter (``"service:"`` matches every service
        span); ``None`` watches every span.
    path:
        Dump the ring as Chrome-trace JSON here on fire.  A ``{n}``
        placeholder is replaced with the fire ordinal (``0, 1, ...``);
        without it, each fire overwrites (latest anomaly wins).
    action:
        Callback ``(recorder, span_name, dur_ms)`` run on fire (after
        the dump, when both are configured).
    cooldown_s:
        Minimum seconds between fires — a latency storm produces one
        dump, not one per slow span.  ``0`` fires every time.
    """

    def __init__(
        self,
        threshold_ms: float,
        span: str | None = None,
        path: "str | os.PathLike[str] | None" = None,
        action: TriggerAction | None = None,
        cooldown_s: float = 60.0,
    ) -> None:
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")
        if path is None and action is None:
            raise ValueError("a trigger needs a dump path and/or an action")
        self.threshold_ms = threshold_ms
        self.span = span
        self.path = path
        self.action = action
        self.cooldown_s = cooldown_s
        self.fired = 0
        self.last_path: str | None = None
        self._last_fire: float | None = None

    def check(self, recorder: "FlightRecorder", name: str, dur_ms: float) -> bool:
        """Evaluate one closed span; returns True when the trigger fired."""
        if dur_ms < self.threshold_ms:
            return False
        if self.span is not None and not name.startswith(self.span):
            return False
        now = time.monotonic()
        if self._last_fire is not None and now - self._last_fire < self.cooldown_s:
            return False
        self._last_fire = now
        if self.path is not None:
            target = str(self.path).replace("{n}", str(self.fired))
            self.last_path = recorder.write(target, process_name="repro-flight")
        self.fired += 1
        if self.action is not None:
            self.action(recorder, name, dur_ms)
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scope = self.span or "*"
        return f"FlightTrigger<{scope} > {self.threshold_ms}ms, fired={self.fired}>"


class FlightRecorder(TraceRecorder):
    """A :class:`TraceRecorder` over a bounded ring (see module docstring).

    Everything the base class offers — ``span``/``instant``/``context``,
    ``spans()``, ``to_chrome()``/``write()`` — works on the retained
    window; :attr:`dropped` says how many older events wrapped away.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_FLIGHT_CAPACITY,
        triggers: Iterable[FlightTrigger] = (),
    ) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError("flight-recorder capacity must be >= 1")
        self._ring = _Ring(capacity)
        self._events = self._ring
        self.triggers: list[FlightTrigger] = list(triggers)

    @property
    def capacity(self) -> int:
        return self._ring.capacity

    @property
    def total_events(self) -> int:
        """Events ever recorded (retained + wrapped away)."""
        return self._ring.total

    @property
    def dropped(self) -> int:
        """Events the ring has overwritten since construction/clear."""
        return max(0, self._ring.total - self._ring.capacity)

    def add_trigger(self, trigger: FlightTrigger) -> FlightTrigger:
        """Attach *trigger*; returns it (handy for later inspection)."""
        self.triggers.append(trigger)
        return trigger

    def _record(self, event: _Event) -> None:
        self._ring.append(event)
        if self.triggers and event[0] == "X":
            dur_ms = event[3] / 1e6
            for trigger in self.triggers:
                trigger.check(self, event[1], dur_ms)

    def snapshot(self, last: int | None = None, name: str | None = None) -> list[dict[str, Any]]:
        """The retained complete spans as JSON-safe dicts, oldest first.

        *last* keeps only the most recent N; *name* filters by span
        name.  This is what the slow-query log embeds — small, plain,
        serializable.
        """
        spans = self.spans(name)
        if last is not None:
            spans = spans[-last:]
        return [
            {
                "name": s["name"],
                "ts_us": round(float(s["ts_us"]), 1),
                "dur_us": round(float(s["dur_us"]), 1),
                "args": {k: _json_safe(v) for k, v in dict(s["args"]).items()},
            }
            for s in spans
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlightRecorder<{len(self._ring)}/{self.capacity} events, "
            f"{self.dropped} dropped>"
        )


def _sanitize(value: Any) -> Any:
    """Recursively coerce a slow-query entry into JSON-serializable data."""
    if isinstance(value, Mapping):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return _json_safe(value)


class SlowQueryLog:
    """A bounded structured log of requests that blew a latency threshold.

    The serving tier appends one entry per slow query (request id, plan
    shape, stepper spec, cache verdict, latency, work counters, flight
    snapshot); the log keeps the most recent *capacity* of them.  Entries
    are sanitized to plain JSON data on the way in, so :meth:`write`
    (JSONL) and the ``repro report`` "Slow queries" section never meet a
    numpy scalar.  Truthiness means "has entries" — guard call sites
    with ``is not None``.
    """

    def __init__(self, threshold_ms: float, capacity: int = 256) -> None:
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")
        if capacity < 1:
            raise ValueError("slow-query log capacity must be >= 1")
        self.threshold_ms = threshold_ms
        self.capacity = capacity
        self.total = 0  # entries ever recorded (retained + rotated out)
        self._entries: deque[dict[str, Any]] = deque(maxlen=capacity)

    def record(self, entry: Mapping[str, Any]) -> dict[str, Any]:
        """Append one entry (stamped with a wall-clock ``ts``); returns
        the sanitized dict actually stored."""
        stored = dict(_sanitize(entry))
        stored.setdefault("ts", round(time.time(), 3))
        stored.setdefault("threshold_ms", self.threshold_ms)
        self._entries.append(stored)
        self.total += 1
        return stored

    def entries(self) -> list[dict[str, Any]]:
        """The retained entries, oldest first (copies — safe to mutate)."""
        return [dict(e) for e in self._entries]

    def clear(self) -> None:
        self._entries.clear()
        self.total = 0

    def write(self, path: "str | os.PathLike[str]") -> str:
        """Write the retained entries as JSON Lines; returns the path."""
        with open(path, "w") as fh:
            for entry in self._entries:
                fh.write(json.dumps(entry) + "\n")
        return str(path)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.entries())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlowQueryLog<{len(self)}/{self.capacity} entries, "
            f">{self.threshold_ms}ms>"
        )

"""Sharded execution: graph partitioning + partition-parallel stepping.

The paper's task-parallel decomposition (Fig. 4) splits *work* inside one
address space; this package splits the *graph*.  A partitioner assigns
every vertex an owner shard and materializes per-shard CSR slices
(:mod:`repro.shard.partition`); the sharded stepper runs delta-stepping
per shard and moves boundary relaxations through a per-step frontier
exchange with min-combine delivery (:mod:`repro.shard.exchange`,
:mod:`repro.shard.stepper`).  The protocol is exactly what a
multi-machine deployment runs — the in-process and thread-pool
transports are rehearsals on one machine, and the exchange counts the
communication volume a wire would pay (the SHARD bench's headline
metric, next to speedup).

Module map
----------
==================================  =========================================
:mod:`~repro.shard.partition`       edge-cut partitioners (``contiguous``,
                                    ``bfs``), :class:`ShardedGraph` with
                                    per-shard CSR slices / owner map /
                                    halo edges
:mod:`~repro.shard.exchange`        outboxes, min-combine delivery,
                                    communication counters, pluggable
                                    transports (inline, worker pool)
:mod:`~repro.shard.stepper`         :class:`ShardedDeltaStepper` — the
                                    ``"sharded"`` member of
                                    :data:`repro.stepping.STEPPERS`
==================================  =========================================

Entry points::

    from repro.shard import partition_graph, ShardedDeltaStepper
    from repro.stepping import solve_with

    sg = partition_graph(graph, num_shards=4, partitioner="bfs")
    print(sg.cut_fraction)                       # partition quality
    res = solve_with("sharded", graph, 0, num_shards=4, partitioner="bfs")
    print(res.extra["entries_carried"])          # communication volume

Because ``"sharded"`` is a registered stepper with full ``resolve``
support, the batch engine (``batch_delta_stepping(..., method="sharded")``),
incremental repair (``repair_sssp(..., stepper="sharded")``), the service
planner, the auto-tuner, and the CLI all dispatch to it unchanged.
"""

from __future__ import annotations

from .exchange import (
    ExchangeStats,
    FrontierExchange,
    InProcessTransport,
    Outbox,
    PoolTransport,
    TRANSPORTS,
    Transport,
    TransportFailure,
    make_transport,
    parse_transport_spec,
)
from .partition import (
    PARTITIONERS,
    Shard,
    ShardedGraph,
    bfs_locality_partition,
    contiguous_partition,
    partition_graph,
    shard_graph,
)
from .stepper import (
    ShardedDeltaStepper,
    default_num_shards,
    sharded_delta_stepping,
    sharded_view,
)

__all__ = [
    "Shard",
    "ShardedGraph",
    "PARTITIONERS",
    "contiguous_partition",
    "bfs_locality_partition",
    "partition_graph",
    "shard_graph",
    "ExchangeStats",
    "Outbox",
    "FrontierExchange",
    "Transport",
    "TransportFailure",
    "InProcessTransport",
    "PoolTransport",
    "TRANSPORTS",
    "make_transport",
    "parse_transport_spec",
    "ShardedDeltaStepper",
    "sharded_delta_stepping",
    "default_num_shards",
    "sharded_view",
]

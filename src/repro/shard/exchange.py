"""The per-step frontier exchange: outboxes, min-combine delivery, transports.

Each superstep of the sharded stepper ends with one exchange round: every
shard has accumulated the relaxation requests that crossed its boundary
(``(target, candidate distance)`` pairs for vertices owned elsewhere),
and the exchange routes them to the owners, **min-combining on
delivery** — only a candidate that beats the owner's current tentative
distance is applied and re-activates the vertex.  Min is associative and
commutative, so routing order cannot change the result; that is what
keeps the sharded schedule on the same min-plus fixed point as every
other stepper.

Two cost-model pieces live here:

- :class:`Outbox` buffers are dense per-sender request arrays
  (scatter-min accumulation, the same ``np.minimum.at`` idiom as the
  batch engine), so duplicate candidates for one target collapse
  *before* they would cross a wire;
- :class:`ExchangeStats` counts what a real multi-machine transport
  would pay — posted candidates, deduplicated entries actually carried,
  applied improvements, and an estimated byte volume — the SHARD bench's
  communication-volume column.

Transports decide *where* the per-shard step functions run:
:class:`InProcessTransport` runs them inline (deterministic, zero
dependencies), :class:`PoolTransport` fans them out on a
:class:`repro.parallel.pool.WorkerPool` (NumPy kernels release the GIL,
so shard steps genuinely overlap).  A multi-machine transport slots in
by implementing the same surface — and the :mod:`repro.faults` wrapper
transports (``chaos`` fault injection, ``resilient`` retry/backoff)
compose over any of them, which is how crash/retry correctness is
proven before real sockets arrive.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np
from numpy.typing import NDArray

from ..kernels import min_by_target
from ..parallel.pool import BatchError, WorkerPool, get_pool
from ..sssp.result import INF

__all__ = [
    "ExchangeStats",
    "Outbox",
    "FrontierExchange",
    "Transport",
    "TransportFailure",
    "InProcessTransport",
    "PoolTransport",
    "TRANSPORTS",
    "make_transport",
    "parse_transport_spec",
    "spec_int",
    "spec_float",
]

#: bytes a wire transport would pay per delivered entry: one int64
#: vertex id + one float64 distance
ENTRY_BYTES = 16


@dataclass
class ExchangeStats:
    """Communication-volume counters for one sharded run.

    ``entries_posted`` counts raw cross-shard relaxation candidates,
    ``entries_carried`` the deduplicated (per-sender min-combined) pairs
    an actual wire would carry, ``entries_applied`` the deliveries that
    improved the owner's tentative distance.  ``exchanges`` counts flush
    rounds (one per superstep that had boundary traffic to move).

    Besides the aggregates, every flush round appends its own row —
    :meth:`per_superstep` — so the wire profile over the run's lifetime
    (the burst shape a real transport must absorb, ``bytes_carried``
    included) is inspectable, not just its sum.
    """

    exchanges: int = 0
    entries_posted: int = 0
    entries_carried: int = 0
    entries_applied: int = 0
    rounds: list[dict[str, int]] = field(default_factory=list)

    @property
    def bytes_carried(self) -> int:
        """Estimated wire volume of the carried entries."""
        return self.entries_carried * ENTRY_BYTES

    @property
    def dedup_ratio(self) -> float:
        """Carried over posted (1.0 = no outbox dedup win)."""
        return self.entries_carried / self.entries_posted if self.entries_posted else 1.0

    def as_dict(self) -> dict[str, int]:
        return {
            "exchanges": self.exchanges,
            "entries_posted": self.entries_posted,
            "entries_carried": self.entries_carried,
            "entries_applied": self.entries_applied,
            "bytes_carried": self.bytes_carried,
        }

    def record_round(self, posted: int, carried: int, applied: int) -> None:
        """Append one flush round's row (and fold it into the aggregates)."""
        self.exchanges += 1
        self.entries_posted += posted
        self.entries_carried += carried
        self.entries_applied += applied
        self.rounds.append(
            {
                "superstep": len(self.rounds),
                "entries_posted": posted,
                "entries_carried": carried,
                "entries_applied": applied,
                "bytes_carried": carried * ENTRY_BYTES,
            }
        )

    def state(self) -> tuple[int, int, int, int, int]:
        """Snapshot for the stepper's superstep checkpoints: the four
        aggregates plus the ledger length (rounds after it are the ones
        a recovery re-executes)."""
        return (
            self.exchanges,
            self.entries_posted,
            self.entries_carried,
            self.entries_applied,
            len(self.rounds),
        )

    def restore(self, state: tuple[int, int, int, int, int]) -> None:
        """Rewind to a :meth:`state` snapshot, truncating the per-round
        ledger — re-executed supersteps append fresh rows, so the
        rows-sum-to-aggregates invariant survives recovery."""
        exchanges, posted, carried, applied, num_rounds = state
        self.exchanges = exchanges
        self.entries_posted = posted
        self.entries_carried = carried
        self.entries_applied = applied
        del self.rounds[num_rounds:]

    def per_superstep(self) -> list[dict]:
        """Per-flush-round breakdown, in superstep order.

        Each row carries ``superstep`` (0-based flush index) plus the
        same four volume keys as :meth:`as_dict`; summing any column
        over the rows reproduces the matching aggregate exactly (the
        rows *are* the aggregates' ledger — same increments, one row
        per round).
        """
        return [dict(row) for row in self.rounds]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExchangeStats<{self.exchanges} exchanges, "
            f"{self.entries_carried}/{self.entries_posted} carried/posted, "
            f"{self.bytes_carried} bytes>"
        )


class Outbox:
    """One sender's accumulation buffer for cross-shard candidates.

    Dense over the global vertex space: posting scatter-mins into
    ``req``, so multiple candidates for one external target collapse to
    the best before the flush.  Only touched keys are reset, keeping a
    post linear in its candidate count.
    """

    def __init__(self, n: int) -> None:
        self.req: NDArray[np.float64] = np.full(n, INF, dtype=np.float64)
        self._touched: list[NDArray[np.int64]] = []
        #: raw candidates posted since the last drain; kept here (one
        #: writer: the owning shard's step) so concurrent shard steps
        #: never race on a shared counter
        self.posted = 0

    def post(self, targets: NDArray[np.int64], dists: NDArray[np.float64]) -> None:
        """Min-combine ``(targets, dists)`` candidates into the buffer."""
        if len(targets) == 0:
            return
        self.posted += len(targets)
        np.minimum.at(self.req, targets, dists)
        self._touched.append(np.asarray(targets, dtype=np.int64))

    def take(self) -> tuple[NDArray[np.int64], NDArray[np.float64]]:
        """Drain: the unique touched targets and their best candidates."""
        self.posted = 0
        if not self._touched:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        keys = np.unique(np.concatenate(self._touched))
        vals = self.req[keys].copy()
        self.req[keys] = INF
        self._touched.clear()
        return keys, vals

    def peek(self) -> tuple[NDArray[np.int64], NDArray[np.float64]]:
        """Non-draining copy of the pending (targets, best candidates).

        The chaos transport's duplicate-delivery injection reads this to
        re-post a box's pending entries elsewhere; min-combine on
        delivery makes the duplicates harmless.
        """
        if not self._touched:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        keys = np.unique(np.concatenate(self._touched))
        return keys, self.req[keys].copy()

    def clear(self) -> None:
        """Drop the pending candidates without delivering them.

        The stepper's checkpoint-restore path calls this on every box: a
        rolled-back superstep's posts must not leak into the
        re-execution (they would be harmless min-candidates, but the
        communication counters would double-count them).
        """
        if self._touched:
            keys = np.unique(np.concatenate(self._touched))
            self.req[keys] = INF
            self._touched.clear()
        self.posted = 0

    def __bool__(self) -> bool:
        return bool(self._touched)


class FrontierExchange:
    """The exchange endpoint shared by all shards of one run.

    Each shard posts into its own :class:`Outbox` (no cross-shard writes
    during a step, so the pool transport needs no locks); ``flush``
    routes every outbox to the owners, min-combines candidates across
    senders, applies the improvements to the authoritative distance
    array, and returns the vertices whose owners must re-activate them.
    """

    def __init__(self, num_shards: int, num_vertices: int) -> None:
        self.outboxes = [Outbox(num_vertices) for _ in range(num_shards)]
        self.stats = ExchangeStats()

    def post(
        self, shard_id: int, targets: NDArray[np.int64], dists: NDArray[np.float64]
    ) -> None:
        """Called from shard *shard_id*'s step: boundary candidates out.

        Concurrency-safe by construction, not by locking: each shard
        writes only its own outbox, and the aggregate counters are
        summed at :meth:`flush` (single-threaded, after the transport
        barrier).
        """
        self.outboxes[shard_id].post(targets, dists)

    def flush(self, dist: NDArray[np.float64]) -> NDArray[np.int64]:
        """One exchange round: deliver all outboxes, min-combine, apply.

        Returns the (sorted, unique) vertices whose tentative distance
        improved — the next step's incoming frontier.
        """
        posted = sum(box.posted for box in self.outboxes)
        pending = [box.take() for box in self.outboxes if box]
        if not pending:
            # a non-empty post always marks its outbox touched, so no
            # pending boxes means nothing was posted — no round to log
            return np.empty(0, dtype=np.int64)
        carried = sum(len(k) for k, _ in pending)
        if len(pending) == 1:
            keys, vals = pending[0]
        else:
            keys, vals = min_by_target(
                np.concatenate([k for k, _ in pending]),
                np.concatenate([v for _, v in pending]),
            )
        improved = vals < dist[keys]
        keys, vals = keys[improved], vals[improved]
        dist[keys] = vals
        self.stats.record_round(posted, carried, len(keys))
        return keys

    def clear_pending(self) -> None:
        """Drop every outbox's pending candidates (checkpoint restore).

        Safe to call after a failed superstep: every transport is a
        barrier (results or failures are collected before ``run``
        returns), so no shard step is still writing when the stepper
        rolls back.
        """
        for box in self.outboxes:
            box.clear()


class TransportFailure(RuntimeError):
    """A transport could not complete a superstep's shard steps.

    The transport-level failure signal (as opposed to
    :class:`repro.parallel.pool.BatchError`, which attributes individual
    task exceptions): retry exhaustion, a lost remote peer, a
    superstep-deadline miss.  The sharded stepper treats both the same
    way — restore the last checkpoint and re-execute, or abort when no
    checkpoint (or no restore budget) remains.
    """


class Transport(ABC):
    """Where per-shard step functions execute (a barrier per round).

    Failure contract: ``run`` either returns every fn's result or raises
    — :class:`~repro.parallel.pool.BatchError` with per-task attribution
    when individual steps failed, or :class:`TransportFailure` for
    transport-level conditions (retry exhaustion, deadline).  Partial
    results never escape silently.

    Wrapper transports (:mod:`repro.faults`) layer on two optional
    hooks, both no-ops here: :meth:`bind_recorder` attaches a telemetry
    recorder, and :meth:`before_flush` runs once per superstep between
    the step barrier and the exchange delivery (where chaos wrappers
    duplicate/reorder pending deliveries).
    """

    name: str = "?"

    @abstractmethod
    def run(self, fns: Sequence[Callable[[], Any]]) -> list[Any]:
        """Execute the zero-argument *fns*, one per shard; barrier until
        all complete, results in submission order."""

    def bind_recorder(self, recorder: Any) -> None:
        """Attach a :class:`repro.obs.Recorder` for transport-level
        counters (``faults.*`` / ``retry.*``); the base transports have
        nothing to record."""

    def before_flush(self, exchange: "FrontierExchange") -> None:
        """Per-superstep hook right before *exchange* delivers; wrapper
        transports perturb pending deliveries here."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Transport<{self.name}>"


class InProcessTransport(Transport):
    """Sequential in-process execution — the deterministic reference.

    Carries the same failure contract as the pool: every fn runs to the
    (trivial) barrier, and failures aggregate into one
    :class:`~repro.parallel.pool.BatchError` instead of the first
    exception aborting the batch mid-way — so retry wrappers see
    identical semantics on every transport.
    """

    name = "inline"

    def run(self, fns: Sequence[Callable[[], Any]]) -> list[Any]:
        results: list[Any] = []
        failures: list[tuple[int, BaseException]] = []
        for i, fn in enumerate(fns):
            try:
                results.append(fn())
            except Exception as exc:
                results.append(None)
                failures.append((i, exc))
        if failures:
            raise BatchError(failures, results)
        return results


class PoolTransport(Transport):
    """Shard steps on a shared :class:`~repro.parallel.pool.WorkerPool`.

    The pool comes from :func:`repro.parallel.pool.get_pool` (or is
    handed in by the caller — the auto-tuner passes one shared pool so
    probe runs never spawn per-probe workers) and is **not** owned:
    shutdown stays with the pool registry.
    """

    def __init__(self, pool: WorkerPool | None = None, num_threads: int = 4) -> None:
        self.pool = pool if pool is not None else get_pool(num_threads)
        self.name = f"threads[{self.pool.num_threads}]"

    def run(self, fns: Sequence[Callable[[], Any]]) -> list[Any]:
        result: list[Any] = self.pool.run_batch(fns)
        return result


def spec_int(
    value: Any, spec: str, knob: str, minimum: int | None = None
) -> int:
    """Parse an integer knob from a transport spec, naming the offending
    spec string on failure (a bare ``invalid literal`` ten frames down
    is useless when the spec came from a CLI flag or a stepper spec)."""
    try:
        parsed = int(str(value).strip())
    except ValueError:
        raise ValueError(
            f"transport spec {spec!r}: {knob} must be an integer, got {value!r}"
        ) from None
    if minimum is not None and parsed < minimum:
        raise ValueError(
            f"transport spec {spec!r}: {knob} must be >= {minimum}, got {parsed}"
        )
    return parsed


def spec_float(
    value: Any,
    spec: str,
    knob: str,
    lo: float | None = None,
    hi: float | None = None,
) -> float:
    """Parse a float knob from a transport spec; same naming contract as
    :func:`spec_int`, with an optional inclusive ``[lo, hi]`` range."""
    try:
        parsed = float(str(value).strip())
    except ValueError:
        raise ValueError(
            f"transport spec {spec!r}: {knob} must be a number, got {value!r}"
        ) from None
    if (lo is not None and parsed < lo) or (hi is not None and parsed > hi):
        bounds = f"[{lo if lo is not None else '-inf'}, {hi if hi is not None else 'inf'}]"
        raise ValueError(
            f"transport spec {spec!r}: {knob} must be in {bounds}, got {parsed}"
        )
    return parsed


def parse_transport_spec(spec: str) -> tuple[str, str | None, dict[str, str]]:
    """Split a transport spec into ``(name, positional arg, params)``.

    Three accepted shapes: bare ``"name"``, colon ``"name:arg"``, and
    parameterized ``"name(key=value,...)"`` — the last is what wrapper
    transports use, and values may themselves contain colons
    (``chaos(inner=threads:4,seed=7)``) but not commas or parentheses
    (one nesting level: wrap a wrapper by constructing it in code).
    """
    text = str(spec).strip()
    if "(" in text:
        name, _, rest = text.partition("(")
        if not rest.endswith(")"):
            raise ValueError(f"malformed transport spec {spec!r}: missing ')'")
        params: dict[str, str] = {}
        body = rest[:-1].strip()
        if body:
            for item in body.split(","):
                key, eq, value = item.partition("=")
                if not eq or not key.strip() or not value.strip():
                    raise ValueError(
                        f"malformed transport spec {spec!r}: "
                        f"expected key=value, got {item.strip()!r}"
                    )
                params[key.strip()] = value.strip()
        return name.strip(), None, params
    name, sep, arg = text.partition(":")
    return name.strip(), (arg.strip() if sep else None), {}


def _reject_unknown_params(spec: str, params: dict[str, str]) -> None:
    if params:
        raise ValueError(
            f"transport spec {spec!r}: unknown parameter(s): "
            f"{', '.join(sorted(params))}"
        )


def _make_inline(
    arg: str | None, pool: WorkerPool | None, spec: str, params: dict[str, str]
) -> Transport:
    if arg is not None:
        raise ValueError(f"transport spec {spec!r}: 'inline' takes no argument")
    _reject_unknown_params(spec, params)
    return InProcessTransport()


def _make_threads(
    arg: str | None, pool: WorkerPool | None, spec: str, params: dict[str, str]
) -> Transport:
    raw = arg if arg is not None else params.pop("n", None)
    _reject_unknown_params(spec, params)
    n = spec_int(raw, spec, "thread count", minimum=1) if raw is not None else 4
    return PoolTransport(pool=pool, num_threads=n)


def _make_chaos(
    arg: str | None, pool: WorkerPool | None, spec: str, params: dict[str, str]
) -> Transport:
    if arg is not None:
        raise ValueError(
            f"transport spec {spec!r}: 'chaos' takes key=value parameters, "
            f"e.g. chaos(inner=threads:4,seed=7,fail_rate=0.2)"
        )
    from ..faults.chaos import chaos_from_params

    transport: Transport = chaos_from_params(params, pool=pool, spec=spec)
    return transport


def _make_resilient(
    arg: str | None, pool: WorkerPool | None, spec: str, params: dict[str, str]
) -> Transport:
    if arg is not None:
        raise ValueError(
            f"transport spec {spec!r}: 'resilient' takes key=value parameters, "
            f"e.g. resilient(inner=threads:4,attempts=4)"
        )
    from ..faults.retry import resilient_from_params

    transport: Transport = resilient_from_params(params, pool=pool, spec=spec)
    return transport


#: transport spec → factory; the discovery surface of
#: :func:`make_transport`.  ``threads`` takes an optional thread count
#: (``"threads:8"``); ``chaos`` and ``resilient`` are the
#: :mod:`repro.faults` wrappers (seeded fault injection / retry with
#: backoff) in parameterized ``name(key=value,...)`` form — their
#: factories import the faults package on first use, so the registry
#: names them without a circular import.
TRANSPORTS: dict[
    str, Callable[[str | None, "WorkerPool | None", str, dict[str, str]], Transport]
] = {
    "inline": _make_inline,
    "threads": _make_threads,
    "chaos": _make_chaos,
    "resilient": _make_resilient,
}


def make_transport(spec: Any = None, pool: WorkerPool | None = None) -> Transport:
    """Resolve a transport from a spec string, instance, or pool.

    ``None`` picks :class:`PoolTransport` when a *pool* is supplied and
    :class:`InProcessTransport` otherwise; strings are ``"inline"``,
    ``"threads[:N]"``, or the parameterized wrapper forms (see
    :data:`TRANSPORTS` and :func:`parse_transport_spec`).  Raises
    ``ValueError`` naming every registered transport on an unknown name,
    and naming the offending spec string on a bad knob value.
    """
    if isinstance(spec, Transport):
        return spec
    if spec is None:
        return PoolTransport(pool=pool) if pool is not None else InProcessTransport()
    text = str(spec)
    name, arg, params = parse_transport_spec(text)
    try:
        factory = TRANSPORTS[name]
    except KeyError:
        raise ValueError(
            f"unknown transport {text!r}; known: {', '.join(TRANSPORTS)}"
        ) from None
    return factory(arg, pool, text, dict(params))

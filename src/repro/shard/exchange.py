"""The per-step frontier exchange: outboxes, min-combine delivery, transports.

Each superstep of the sharded stepper ends with one exchange round: every
shard has accumulated the relaxation requests that crossed its boundary
(``(target, candidate distance)`` pairs for vertices owned elsewhere),
and the exchange routes them to the owners, **min-combining on
delivery** — only a candidate that beats the owner's current tentative
distance is applied and re-activates the vertex.  Min is associative and
commutative, so routing order cannot change the result; that is what
keeps the sharded schedule on the same min-plus fixed point as every
other stepper.

Two cost-model pieces live here:

- :class:`Outbox` buffers are dense per-sender request arrays
  (scatter-min accumulation, the same ``np.minimum.at`` idiom as the
  batch engine), so duplicate candidates for one target collapse
  *before* they would cross a wire;
- :class:`ExchangeStats` counts what a real multi-machine transport
  would pay — posted candidates, deduplicated entries actually carried,
  applied improvements, and an estimated byte volume — the SHARD bench's
  communication-volume column.

Transports decide *where* the per-shard step functions run:
:class:`InProcessTransport` runs them inline (deterministic, zero
dependencies), :class:`PoolTransport` fans them out on a
:class:`repro.parallel.pool.WorkerPool` (NumPy kernels release the GIL,
so shard steps genuinely overlap).  A multi-machine transport slots in
by implementing the same two-method surface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np
from numpy.typing import NDArray

from ..kernels import min_by_target
from ..parallel.pool import WorkerPool, get_pool
from ..sssp.result import INF

__all__ = [
    "ExchangeStats",
    "Outbox",
    "FrontierExchange",
    "Transport",
    "InProcessTransport",
    "PoolTransport",
    "TRANSPORTS",
    "make_transport",
]

#: bytes a wire transport would pay per delivered entry: one int64
#: vertex id + one float64 distance
ENTRY_BYTES = 16


@dataclass
class ExchangeStats:
    """Communication-volume counters for one sharded run.

    ``entries_posted`` counts raw cross-shard relaxation candidates,
    ``entries_carried`` the deduplicated (per-sender min-combined) pairs
    an actual wire would carry, ``entries_applied`` the deliveries that
    improved the owner's tentative distance.  ``exchanges`` counts flush
    rounds (one per superstep that had boundary traffic to move).

    Besides the aggregates, every flush round appends its own row —
    :meth:`per_superstep` — so the wire profile over the run's lifetime
    (the burst shape a real transport must absorb, ``bytes_carried``
    included) is inspectable, not just its sum.
    """

    exchanges: int = 0
    entries_posted: int = 0
    entries_carried: int = 0
    entries_applied: int = 0
    rounds: list[dict[str, int]] = field(default_factory=list)

    @property
    def bytes_carried(self) -> int:
        """Estimated wire volume of the carried entries."""
        return self.entries_carried * ENTRY_BYTES

    @property
    def dedup_ratio(self) -> float:
        """Carried over posted (1.0 = no outbox dedup win)."""
        return self.entries_carried / self.entries_posted if self.entries_posted else 1.0

    def as_dict(self) -> dict[str, int]:
        return {
            "exchanges": self.exchanges,
            "entries_posted": self.entries_posted,
            "entries_carried": self.entries_carried,
            "entries_applied": self.entries_applied,
            "bytes_carried": self.bytes_carried,
        }

    def record_round(self, posted: int, carried: int, applied: int) -> None:
        """Append one flush round's row (and fold it into the aggregates)."""
        self.exchanges += 1
        self.entries_posted += posted
        self.entries_carried += carried
        self.entries_applied += applied
        self.rounds.append(
            {
                "superstep": len(self.rounds),
                "entries_posted": posted,
                "entries_carried": carried,
                "entries_applied": applied,
                "bytes_carried": carried * ENTRY_BYTES,
            }
        )

    def per_superstep(self) -> list[dict]:
        """Per-flush-round breakdown, in superstep order.

        Each row carries ``superstep`` (0-based flush index) plus the
        same four volume keys as :meth:`as_dict`; summing any column
        over the rows reproduces the matching aggregate exactly (the
        rows *are* the aggregates' ledger — same increments, one row
        per round).
        """
        return [dict(row) for row in self.rounds]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExchangeStats<{self.exchanges} exchanges, "
            f"{self.entries_carried}/{self.entries_posted} carried/posted, "
            f"{self.bytes_carried} bytes>"
        )


class Outbox:
    """One sender's accumulation buffer for cross-shard candidates.

    Dense over the global vertex space: posting scatter-mins into
    ``req``, so multiple candidates for one external target collapse to
    the best before the flush.  Only touched keys are reset, keeping a
    post linear in its candidate count.
    """

    def __init__(self, n: int) -> None:
        self.req: NDArray[np.float64] = np.full(n, INF, dtype=np.float64)
        self._touched: list[NDArray[np.int64]] = []
        #: raw candidates posted since the last drain; kept here (one
        #: writer: the owning shard's step) so concurrent shard steps
        #: never race on a shared counter
        self.posted = 0

    def post(self, targets: NDArray[np.int64], dists: NDArray[np.float64]) -> None:
        """Min-combine ``(targets, dists)`` candidates into the buffer."""
        if len(targets) == 0:
            return
        self.posted += len(targets)
        np.minimum.at(self.req, targets, dists)
        self._touched.append(np.asarray(targets, dtype=np.int64))

    def take(self) -> tuple[NDArray[np.int64], NDArray[np.float64]]:
        """Drain: the unique touched targets and their best candidates."""
        self.posted = 0
        if not self._touched:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        keys = np.unique(np.concatenate(self._touched))
        vals = self.req[keys].copy()
        self.req[keys] = INF
        self._touched.clear()
        return keys, vals

    def __bool__(self) -> bool:
        return bool(self._touched)


class FrontierExchange:
    """The exchange endpoint shared by all shards of one run.

    Each shard posts into its own :class:`Outbox` (no cross-shard writes
    during a step, so the pool transport needs no locks); ``flush``
    routes every outbox to the owners, min-combines candidates across
    senders, applies the improvements to the authoritative distance
    array, and returns the vertices whose owners must re-activate them.
    """

    def __init__(self, num_shards: int, num_vertices: int) -> None:
        self.outboxes = [Outbox(num_vertices) for _ in range(num_shards)]
        self.stats = ExchangeStats()

    def post(
        self, shard_id: int, targets: NDArray[np.int64], dists: NDArray[np.float64]
    ) -> None:
        """Called from shard *shard_id*'s step: boundary candidates out.

        Concurrency-safe by construction, not by locking: each shard
        writes only its own outbox, and the aggregate counters are
        summed at :meth:`flush` (single-threaded, after the transport
        barrier).
        """
        self.outboxes[shard_id].post(targets, dists)

    def flush(self, dist: NDArray[np.float64]) -> NDArray[np.int64]:
        """One exchange round: deliver all outboxes, min-combine, apply.

        Returns the (sorted, unique) vertices whose tentative distance
        improved — the next step's incoming frontier.
        """
        posted = sum(box.posted for box in self.outboxes)
        pending = [box.take() for box in self.outboxes if box]
        if not pending:
            # a non-empty post always marks its outbox touched, so no
            # pending boxes means nothing was posted — no round to log
            return np.empty(0, dtype=np.int64)
        carried = sum(len(k) for k, _ in pending)
        if len(pending) == 1:
            keys, vals = pending[0]
        else:
            keys, vals = min_by_target(
                np.concatenate([k for k, _ in pending]),
                np.concatenate([v for _, v in pending]),
            )
        improved = vals < dist[keys]
        keys, vals = keys[improved], vals[improved]
        dist[keys] = vals
        self.stats.record_round(posted, carried, len(keys))
        return keys


class Transport(ABC):
    """Where per-shard step functions execute (a barrier per round)."""

    name: str = "?"

    @abstractmethod
    def run(self, fns: Sequence[Callable[[], Any]]) -> list[Any]:
        """Execute the zero-argument *fns*, one per shard; barrier until
        all complete, results in submission order."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Transport<{self.name}>"


class InProcessTransport(Transport):
    """Sequential in-process execution — the deterministic reference."""

    name = "inline"

    def run(self, fns: Sequence[Callable[[], Any]]) -> list[Any]:
        return [fn() for fn in fns]


class PoolTransport(Transport):
    """Shard steps on a shared :class:`~repro.parallel.pool.WorkerPool`.

    The pool comes from :func:`repro.parallel.pool.get_pool` (or is
    handed in by the caller — the auto-tuner passes one shared pool so
    probe runs never spawn per-probe workers) and is **not** owned:
    shutdown stays with the pool registry.
    """

    def __init__(self, pool: WorkerPool | None = None, num_threads: int = 4) -> None:
        self.pool = pool if pool is not None else get_pool(num_threads)
        self.name = f"threads[{self.pool.num_threads}]"

    def run(self, fns: Sequence[Callable[[], Any]]) -> list[Any]:
        result: list[Any] = self.pool.run_batch(fns)
        return result


#: transport spec → factory; the discovery surface of
#: :func:`make_transport` (``threads`` takes an optional thread count,
#: e.g. ``"threads:8"``).
TRANSPORTS: dict[str, Callable[..., Transport]] = {
    "inline": lambda arg=None, pool=None: InProcessTransport(),
    "threads": lambda arg=None, pool=None: PoolTransport(
        pool=pool, num_threads=int(arg) if arg else 4
    ),
}


def make_transport(spec: Any = None, pool: WorkerPool | None = None) -> Transport:
    """Resolve a transport from a spec string, instance, or pool.

    ``None`` picks :class:`PoolTransport` when a *pool* is supplied and
    :class:`InProcessTransport` otherwise; strings are ``"inline"``,
    ``"threads"``, or ``"threads:N"``.  Raises ``ValueError`` naming
    every registered transport.
    """
    if isinstance(spec, Transport):
        return spec
    if spec is None:
        return PoolTransport(pool=pool) if pool is not None else InProcessTransport()
    name, _, arg = str(spec).partition(":")
    try:
        factory = TRANSPORTS[name]
    except KeyError:
        raise ValueError(
            f"unknown transport {spec!r}; known: {', '.join(TRANSPORTS)}"
        ) from None
    return factory(arg or None, pool=pool)

"""Graph partitioning: vertex ownership maps and per-shard CSR slices.

A *partition* assigns every vertex to exactly one shard (its **owner**);
a shard's slice of the graph is the CSR rows of its owned vertices, with
column ids kept **global** so a relaxation wave can tell internal targets
(owned here) from boundary targets (owned elsewhere — these cross the
frontier exchange, :mod:`repro.shard.exchange`).  Edge-cut quality is
what the sharded stepper pays for per step, so both partitioners balance
*edge mass* (the CSR row costs), not vertex counts:

- ``contiguous`` — cost-balanced contiguous vertex ranges via
  :func:`repro.parallel.partition.chunk_by_cost` over the CSR row
  lengths.  Zero bookkeeping, and already near-optimal for generators
  that emit locality-correlated ids (meshes, road grids).
- ``bfs`` — breadth-first locality ordering: vertices are enumerated in
  BFS discovery order (component by component, lowest unvisited id as
  each seed) and that *ordering* is cut into cost-balanced runs.  Vertices
  discovered together land in the same shard regardless of their ids,
  which is the standard cheap approximation of a min-cut partitioner
  (SSSP-Del's shard construction makes the same trade).

The registry follows the repo's discovery idiom (``DELTA_STRATEGIES``,
``STEPPERS``): one table (:data:`PARTITIONERS`), one accessor
(:func:`partition_graph`) whose ``ValueError`` enumerates every member.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import Graph
from ..kernels import cached_row_ids
from ..parallel.partition import chunk_by_cost

__all__ = [
    "Shard",
    "ShardedGraph",
    "PARTITIONERS",
    "contiguous_partition",
    "bfs_locality_partition",
    "partition_graph",
    "shard_graph",
    "expand_rows",
]


def expand_rows(indptr: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CSR row expansion: ``(flat, lengths)`` for the given *rows*.

    ``flat`` indexes every edge-array entry belonging to *rows*, in row
    order; ``lengths`` is each row's edge count (so callers can
    ``np.repeat`` per-row values across their edges).  The one shared
    implementation of the gather idiom this package's partitioners,
    slicer, and stepper all run on.
    """
    starts = indptr[rows].astype(np.int64)
    lengths = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lengths
    offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
    flat = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, lengths)
    return flat, lengths


def contiguous_partition(graph: Graph, num_shards: int) -> np.ndarray:
    """Owner array from cost-balanced contiguous vertex ranges.

    Costs are the CSR row lengths (out-degrees), so each shard sees a
    similar number of edges even on power-law degree distributions.
    May return fewer than *num_shards* distinct owners when the edge
    mass cannot be split that many ways (zero-cost tails are folded in,
    never emitted as empty shards).
    """
    n = graph.num_vertices
    owner = np.zeros(n, dtype=np.int64)
    ranges = chunk_by_cost(graph.out_degree(), min(num_shards, max(1, n)))
    for k, (lo, hi) in enumerate(ranges):
        owner[lo:hi] = k
    return owner


def bfs_locality_partition(graph: Graph, num_shards: int) -> np.ndarray:
    """Owner array from cost-balanced runs of the BFS discovery order.

    The traversal is undirected (an edge in either direction makes two
    vertices neighbors) so locality survives asymmetric storage; each
    component is explored from its lowest unvisited vertex id, and
    frontier waves enumerate by ascending id — fully deterministic.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    # symmetric adjacency for the traversal only (owners, not edges)
    src, dst = cached_row_ids(graph), graph.indices
    both_s = np.concatenate([src, dst]).astype(np.int64)
    both_d = np.concatenate([dst, src]).astype(np.int64)
    order_key = np.argsort(both_s, kind="stable")
    both_s, both_d = both_s[order_key], both_d[order_key]
    sym_indptr = np.concatenate(
        [[0], np.cumsum(np.bincount(both_s, minlength=n))]
    ).astype(np.int64)

    deg = graph.out_degree()
    seen = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    for seed_start in range(n):
        if seen[seed_start]:
            continue
        frontier = np.array([seed_start], dtype=np.int64)
        seen[seed_start] = True
        while len(frontier):
            order[pos : pos + len(frontier)] = frontier
            pos += len(frontier)
            flat, _ = expand_rows(sym_indptr, frontier)
            if len(flat) == 0:
                break
            nbrs = both_d[flat]
            new = np.unique(nbrs[~seen[nbrs]])
            seen[new] = True
            frontier = new
    ranges = chunk_by_cost(deg[order], min(num_shards, max(1, n)))
    owner = np.zeros(n, dtype=np.int64)
    for k, (lo, hi) in enumerate(ranges):
        owner[order[lo:hi]] = k
    return owner


#: name → ``(graph, num_shards) -> owner array``; the discovery surface
#: shared by :func:`partition_graph`, the sharded stepper's params, the
#: SHARD bench, and ``repro shard-bench``.
PARTITIONERS = {
    "contiguous": contiguous_partition,
    "bfs": bfs_locality_partition,
}


@dataclass(frozen=True)
class Shard:
    """One shard: its owned vertices and their CSR slice.

    ``indptr``/``indices``/``weights`` are the CSR rows of ``owned`` (in
    ``owned`` order) with **global** column ids; ``cut_mask`` flags the
    slice entries whose target lives on another shard (the boundary /
    halo edges), and ``halo`` is the sorted set of external vertices
    those edges reach.
    """

    id: int
    owned: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    cut_mask: np.ndarray
    halo: np.ndarray

    @property
    def num_owned(self) -> int:
        return len(self.owned)

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    @property
    def num_cut_edges(self) -> int:
        return int(self.cut_mask.sum())

    def local_rows(self, vertices: np.ndarray) -> np.ndarray:
        """Local row index of each (owned) global vertex id."""
        return np.searchsorted(self.owned, vertices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Shard<{self.id}: |V|={self.num_owned}, |E|={self.num_edges}, "
            f"cut={self.num_cut_edges}>"
        )


@dataclass(frozen=True)
class ShardedGraph:
    """A partitioned view of one :class:`~repro.graphs.graph.Graph`.

    The source graph stays authoritative (the view shares its arrays and
    records the :attr:`~repro.graphs.graph.Graph.epoch` it was built at,
    so consumers can detect staleness after a mutation); the shards add
    the ownership map and per-shard CSR slices the partition-parallel
    stepper executes on.
    """

    graph: Graph
    owner: np.ndarray
    shards: tuple[Shard, ...]
    partitioner: str
    epoch: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_cut_edges(self) -> int:
        """Stored edges whose endpoints live on different shards."""
        return sum(s.num_cut_edges for s in self.shards)

    @property
    def cut_fraction(self) -> float:
        """Cut edges over stored edges (0 on an edgeless graph)."""
        m = self.graph.num_edges
        return self.num_cut_edges / m if m else 0.0

    def is_stale(self) -> bool:
        """True when the graph has mutated since this view was built."""
        return self.graph.epoch != self.epoch

    def edge_balance(self) -> float:
        """Max shard edge count over the ideal even share (1.0 = perfect)."""
        if not self.shards or self.graph.num_edges == 0:
            return 1.0
        ideal = self.graph.num_edges / self.num_shards
        return max(s.num_edges for s in self.shards) / ideal

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedGraph<{self.graph.name}: {self.num_shards} shards "
            f"({self.partitioner}), cut={self.num_cut_edges} "
            f"({self.cut_fraction:.1%})>"
        )


def shard_graph(graph: Graph, owner: np.ndarray, partitioner: str = "custom") -> ShardedGraph:
    """Materialize the per-shard CSR slices for an explicit *owner* array."""
    n = graph.num_vertices
    owner = np.asarray(owner, dtype=np.int64)
    if owner.shape != (n,):
        raise ValueError(f"owner array must have shape ({n},), got {owner.shape}")
    if n and (owner.min() < 0):
        raise ValueError("owner ids must be non-negative")
    num_shards = int(owner.max()) + 1 if n else 1
    indptr, indices, weights = graph.csr()
    shards = []
    for k in range(num_shards):
        owned = np.nonzero(owner == k)[0]
        flat, lengths = expand_rows(indptr, owned)
        sub_indptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
        if len(flat):
            sub_indices = indices[flat].astype(np.int64)
            sub_weights = weights[flat]
        else:
            sub_indices = np.empty(0, dtype=np.int64)
            sub_weights = np.empty(0, dtype=np.float64)
        cut_mask = owner[sub_indices] != k if len(flat) else np.empty(0, dtype=bool)
        halo = np.unique(sub_indices[cut_mask])
        shards.append(
            Shard(
                id=k,
                owned=owned,
                indptr=sub_indptr,
                indices=sub_indices,
                weights=sub_weights,
                cut_mask=cut_mask,
                halo=halo,
            )
        )
    return ShardedGraph(
        graph=graph,
        owner=owner,
        shards=tuple(shards),
        partitioner=partitioner,
        epoch=graph.epoch,
    )


def partition_graph(graph: Graph, num_shards: int, partitioner: str = "contiguous") -> ShardedGraph:
    """Partition *graph* into (up to) *num_shards* shards.

    Raises ``ValueError`` naming every registered partitioner — the same
    discovery contract as :func:`repro.stepping.get_stepper`.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    try:
        fn = PARTITIONERS[partitioner]
    except KeyError:
        raise ValueError(
            f"unknown partitioner {partitioner!r}; known: {', '.join(PARTITIONERS)}"
        ) from None
    return shard_graph(graph, fn(graph, num_shards), partitioner=partitioner)

"""The partition-parallel sharded stepper: per-shard Δ-waves + exchange.

One more member of the :data:`repro.stepping.STEPPERS` family, with the
schedule decomposed **over partitions** (SSSP-Del's architecture, on the
stepping contract PR 3 fixed):

1. a global window ``[min, min + Δ]`` anchors at the smallest active
   tentative distance (the Δ*-style sliding window — every superstep is
   non-empty by construction);
2. every shard pops its *owned* in-window frontier and runs the shared
   relax wave over its CSR slice to local quiescence — in-window
   improvements of internal targets re-relax immediately, out-of-window
   ones re-activate for a later superstep, and boundary targets (owned
   by another shard) accumulate into the shard's outbox;
3. one frontier exchange per superstep routes the outboxes,
   min-combines candidates across senders, and re-activates the owners'
   improved vertices (:mod:`repro.shard.exchange`).

Shards never write outside their owned vertex range during a step, so
the per-shard step functions run on any transport — inline, or fanned
out on a :class:`~repro.parallel.pool.WorkerPool` where the NumPy
kernels overlap for real.  Distances still converge to the unique
min-plus fixed point (every write is a min of ``d[u] ⊕ w`` terms, and
IEEE min is order-independent), so the result is **bit-identical** to
Dijkstra — the same exactness contract every other stepper carries, now
held across partition boundaries.

``resolve`` implements the full seeded contract, so incremental repair
(:func:`repro.dynamic.repair_sssp`) and the batch engine dispatch to the
sharded backend unchanged.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..kernels import RelaxWorkspace, check_kernel, min_by_target
from ..parallel.pool import BatchError
from ..sssp.result import INF, SSSPResult
from ..stepping.base import Stepper, new_counters, register_stepper
from ..stepping.delta_star import default_delta_star
from .exchange import FrontierExchange, TransportFailure, make_transport
from .partition import PARTITIONERS, ShardedGraph, expand_rows, partition_graph

__all__ = ["ShardedDeltaStepper", "sharded_delta_stepping", "default_num_shards", "sharded_view"]

#: key in ``graph.meta`` caching partitioned views per (shards,
#: partitioner); entries are dropped when the graph's epoch moves past
#: them, and the cache's lifetime is the graph's own
_VIEW_CACHE_KEY = "_shard_views"


def default_num_shards(graph: Graph) -> int:
    """Shard-count heuristic: up to 4 shards, never more than n/2.

    Four matches the coarse-task widths the paper measures (Fig. 4); the
    n/2 guard keeps degenerate graphs from paying pure protocol
    overhead.  The auto-tuner races explicit shard counts on top.
    """
    return max(1, min(4, graph.num_vertices // 2))


def sharded_view(graph: Graph, num_shards: int, partitioner: str) -> ShardedGraph:
    """The cached partitioned view of *graph* (rebuilt after mutations).

    Views are memoized in ``graph.meta`` so repeated solves (tuner
    probes, benches, the service's batch loop) pay the O(V+E) partition
    once per ``(num_shards, partitioner, epoch)``.
    """
    views = graph.meta.setdefault(_VIEW_CACHE_KEY, {})
    key = (num_shards, partitioner)
    hit = views.get(key)
    # the identity check matters: Graph.copy() shallow-copies meta, so a
    # copy arrives sharing the dict of views built for the *original*
    if hit is not None and hit.graph is graph and not hit.is_stale():
        return hit
    if any(v.graph is not graph for v in views.values()):
        # inherited from another graph via copy(): rebind a fresh dict
        # for *this* graph — clearing the shared one would evict the
        # original's cache on every solve of the copy, and vice versa
        views = {}
        graph.meta[_VIEW_CACHE_KEY] = views
    elif any(v.is_stale() for v in views.values()):
        # a mutation bumped the epoch: every cached view is stale, not
        # just this key's — drop them all rather than leak one per epoch
        views.clear()
    view = partition_graph(graph, num_shards, partitioner)
    views[key] = view
    return view


def sharded_delta_stepping(
    graph: Graph,
    source: int,
    delta: float | None = None,
    num_shards: int | None = None,
    partitioner: str = "contiguous",
    transport=None,
) -> SSSPResult:
    """Run sharded delta-stepping SSSP from *source* (defaults: auto Δ,
    :func:`default_num_shards`, contiguous partitioning, inline transport)."""
    return ShardedDeltaStepper().solve(
        graph, source, delta=delta, num_shards=num_shards,
        partitioner=partitioner, transport=transport,
    )


class ShardedDeltaStepper(Stepper):
    """The partition-parallel member of the framework (see module docstring)."""

    name = "sharded"
    kind = "sharded"
    description = "partition-parallel delta-stepping, per-step frontier exchange"
    parallel_capable = True
    spec_param_aliases = {"shards": "num_shards", "checkpoint": "checkpoint_every"}

    def solve(
        self,
        graph: Graph,
        source: int,
        delta: float | None = None,
        num_shards: int | None = None,
        partitioner: str = "contiguous",
        transport=None,
        pool=None,
        sharded: ShardedGraph | None = None,
        kernel: str = "auto",
        recorder=None,
        checkpoint_every: int | None = None,
        max_restores: int = 8,
    ) -> SSSPResult:
        n = graph.num_vertices
        if not 0 <= source < n:
            raise IndexError(f"source {source} out of range [0, {n})")
        dist = np.full(n, INF, dtype=np.float64)
        dist[source] = 0.0
        active = np.zeros(n, dtype=bool)
        active[source] = True
        if recorder:
            with recorder.span("solve:sharded", stepper=self.name, source=int(source)):
                counters = self.resolve(
                    graph, dist, active, delta=delta, num_shards=num_shards,
                    partitioner=partitioner, transport=transport, pool=pool,
                    sharded=sharded, kernel=kernel, recorder=recorder,
                    checkpoint_every=checkpoint_every, max_restores=max_restores,
                )
        else:
            counters = self.resolve(
                graph, dist, active, delta=delta, num_shards=num_shards,
                partitioner=partitioner, transport=transport, pool=pool,
                sharded=sharded, kernel=kernel,
                checkpoint_every=checkpoint_every, max_restores=max_restores,
            )
        result = SSSPResult(
            distances=dist,
            source=source,
            delta=float(counters["params"]["delta"]),
            method="sharded",
            buckets_processed=counters["steps"],
            phases=counters["phases"],
            relaxations=counters["relaxations"],
            updates=counters["updates"],
        )
        result.extra.update(counters["params"])
        result.extra.update(counters["comm"])
        return result

    def resolve(
        self,
        graph: Graph,
        dist: np.ndarray,
        active: np.ndarray,
        delta: float | None = None,
        num_shards: int | None = None,
        partitioner: str = "contiguous",
        transport=None,
        pool=None,
        sharded: ShardedGraph | None = None,
        kernel: str = "auto",
        recorder=None,
        checkpoint_every: int | None = None,
        max_restores: int = 8,
    ) -> dict:
        """Run the sharded schedule from a seeded state to quiescence.

        Besides the standard work counters, the returned dict carries
        ``"params"`` (the resolved Δ/shard/partitioner/transport choices)
        and ``"comm"`` (the exchange's communication-volume counters) —
        extra keys the framework consumers ignore and the SHARD bench
        reads.

        *checkpoint_every* = K enables superstep checkpointing (spec
        alias ``checkpoint``): every K supersteps the full superstep
        state — ``dist``, the active mask, the work counters, and the
        :class:`~repro.shard.exchange.ExchangeStats` snapshot — is
        copied, and a recoverable transport failure
        (:class:`~repro.shard.exchange.TransportFailure` or
        :class:`~repro.parallel.pool.BatchError`) restores the last
        checkpoint and re-executes from there instead of aborting, up to
        *max_restores* times.  Re-execution is exact: the window
        re-derives from the restored ``dist``/mask, pending outboxes are
        cleared, and min-combine delivery makes any re-applied work
        harmless — so recovered runs stay bit-identical to Dijkstra
        (the chaos harness's headline assertion).

        A truthy *recorder* gets three span layers per superstep: one
        ``superstep`` span (window bound, phase count, re-activations),
        one ``shard-step`` span per shard — emitted from whatever thread
        the transport ran the step on, so pooled runs show real overlap
        in the trace — and one ``exchange`` span carrying this round's
        :class:`~repro.shard.exchange.ExchangeStats` deltas.
        """
        delta = delta if delta is not None else default_delta_star(graph)
        if delta <= 0:
            raise ValueError("delta must be positive")
        check_kernel(kernel)
        if partitioner not in PARTITIONERS:
            raise ValueError(
                f"unknown partitioner {partitioner!r}; known: {', '.join(PARTITIONERS)}"
            )
        if sharded is not None:
            if sharded.graph is not graph:
                raise ValueError("sharded view was built for a different graph")
            if sharded.is_stale():
                raise ValueError(
                    "sharded view is stale (graph mutated since it was built); "
                    "rebuild with partition_graph or use sharded_view()"
                )
            sg = sharded
        else:
            k = num_shards if num_shards is not None else default_num_shards(graph)
            # validate here so a spec like "sharded(shards=2.0)" fails
            # with the knob named, not a numpy TypeError ten frames down
            if not isinstance(k, (int, np.integer)) or isinstance(k, bool):
                raise ValueError(f"num_shards must be an integer, got {k!r}")
            if k < 1:
                raise ValueError("num_shards must be >= 1")
            sg = sharded_view(graph, int(k), partitioner)

        if checkpoint_every is not None:
            # same knob-naming contract as num_shards: a spec like
            # "sharded(checkpoint=2.5)" must fail with the knob named
            if not isinstance(checkpoint_every, (int, np.integer)) or isinstance(
                checkpoint_every, bool
            ):
                raise ValueError(
                    f"checkpoint_every must be an integer, got {checkpoint_every!r}"
                )
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1")
            checkpoint_every = int(checkpoint_every)
        if not isinstance(max_restores, (int, np.integer)) or isinstance(
            max_restores, bool
        ):
            raise ValueError(f"max_restores must be an integer, got {max_restores!r}")
        if max_restores < 0:
            raise ValueError("max_restores must be >= 0")

        tr = make_transport(transport, pool=pool)
        tr.bind_recorder(recorder if recorder else None)
        ex = FrontierExchange(sg.num_shards, graph.num_vertices)
        owner = sg.owner
        mask = active.astype(bool, copy=True)
        active[:] = False  # ownership transferred, as with LazyFrontier
        counters = new_counters()
        # one workspace per shard: steps run concurrently on pooled
        # transports, and the scatter kernel's dense request vector must
        # have a single writer (same ownership rule as the outboxes).
        # The arenas are only material to the scatter kernel, so the
        # argsort pin skips them entirely, and they are cached on the
        # (already graph.meta-cached) view so repeated solves reuse them.
        if kernel == "argsort":
            shard_ws = None
        else:
            shard_ws = sg.meta.get("_relax_workspaces")
            if shard_ws is None or len(shard_ws) != sg.num_shards:
                shard_ws = [RelaxWorkspace(graph.num_vertices) for _ in sg.shards]
                sg.meta["_relax_workspaces"] = shard_ws

        def shard_step(shard, bound):
            """One shard's superstep: pop owned in-window work, relax its
            CSR slice to local quiescence, post boundary candidates."""
            if recorder:
                with recorder.span("shard-step", shard=int(shard.id)) as sp:
                    c = _shard_step(shard, bound)
                    sp.set(**c)
                return c
            return _shard_step(shard, bound)

        # repro: hot
        def _shard_step(shard, bound):
            c = {"phases": 0, "relaxations": 0, "updates": 0}
            ws = shard_ws[shard.id] if shard_ws is not None else None
            owned = shard.owned
            take = mask[owned] & (dist[owned] <= bound)
            batch = owned[take]
            mask[batch] = False
            while len(batch):
                c["phases"] += 1
                flat, lengths = expand_rows(shard.indptr, shard.local_rows(batch))
                if len(flat) == 0:
                    break
                targets = shard.indices[flat]
                cand = np.repeat(dist[batch], lengths) + shard.weights[flat]
                c["relaxations"] += len(flat)
                internal = owner[targets] == shard.id
                ext_t, ext_d = targets[~internal], cand[~internal]
                if len(ext_t):
                    # pre-filter against the owner's tentative distance: a
                    # concurrently-improving read only under-filters (the
                    # owner min-combines again on delivery), never drops a
                    # real improvement — distances are monotone
                    keep = ext_d < dist[ext_t]
                    ex.post(shard.id, ext_t[keep], ext_d[keep])
                int_t, int_d = targets[internal], cand[internal]
                if len(int_t) == 0:
                    break
                uts, ubest = min_by_target(int_t, int_d, workspace=ws, kernel=kernel)
                improved = ubest < dist[uts]
                uts, ubest = uts[improved], ubest[improved]
                c["updates"] += len(uts)
                dist[uts] = ubest
                in_window = ubest <= bound
                batch = uts[in_window]
                mask[batch] = False  # re-relaxing now, not pending
                mask[uts[~in_window]] = True
            return c

        # superstep checkpointing: the snapshot is everything the loop
        # head reads — dist, the active mask, the scalar work counters,
        # and the exchange ledger position.  The window itself re-derives
        # from dist/mask, so it needs no snapshot.
        def take_checkpoint():
            return (
                dist.copy(),
                mask.copy(),
                {k: counters[k] for k in ("steps", "phases", "relaxations", "updates")},
                ex.stats.state(),
            )

        restores = 0
        ckpt = take_checkpoint() if checkpoint_every else None

        while mask.any():
            peek = float(dist[mask].min())
            if not np.isfinite(peek):
                # active vertices at inf can never improve a neighbor
                break
            bound = peek + delta
            counters["steps"] += 1
            sspan = None
            if recorder:
                p0 = counters["phases"]
                sspan = recorder.span(
                    "superstep", step=int(counters["steps"]), bound=float(bound)
                ).__enter__()
            try:
                per_shard = tr.run(
                    [_bind_step(shard_step, shard, bound) for shard in sg.shards]
                )
            except (TransportFailure, BatchError):
                if sspan is not None:
                    sspan.set(failed=True)
                    sspan.__exit__(None, None, None)
                if ckpt is None or restores >= max_restores:
                    raise
                # restore-and-re-execute: a failed superstep may have
                # consumed mask bits, written partial improvements, and
                # posted partial outbox entries — roll all of it back to
                # the checkpoint and let the loop re-derive the window
                restores += 1
                c_dist, c_mask, c_counters, c_stats = ckpt
                dist[:] = c_dist
                mask[:] = c_mask
                counters.update(c_counters)
                ex.stats.restore(c_stats)
                ex.clear_pending()
                if recorder:
                    recorder.inc("checkpoint.restores")
                continue
            for c in per_shard:
                counters["phases"] += c["phases"]
                counters["relaxations"] += c["relaxations"]
                counters["updates"] += c["updates"]
            tr.before_flush(ex)
            if recorder:
                pre = ex.stats.as_dict()
                with recorder.span("exchange", step=int(counters["steps"])) as xspan:
                    incoming = ex.flush(dist)
                xspan.set(**{k: ex.stats.as_dict()[k] - v for k, v in pre.items()})
            else:
                incoming = ex.flush(dist)
            counters["updates"] += len(incoming)
            mask[incoming] = True
            if sspan is not None:
                sspan.set(phases=counters["phases"] - p0, activated=int(len(incoming)))
                sspan.__exit__(None, None, None)
            if checkpoint_every and counters["steps"] % checkpoint_every == 0:
                ckpt = take_checkpoint()
                if recorder:
                    recorder.inc("checkpoint.snapshots")

        counters["params"] = {
            "delta": float(delta),
            "kernel": kernel,
            "shards": sg.num_shards,
            "partitioner": sg.partitioner,
            "transport": tr.name,
            "cut_edges": sg.num_cut_edges,
            "cut_fraction": sg.cut_fraction,
            "checkpoint_every": int(checkpoint_every) if checkpoint_every else 0,
            "restores": restores,
        }
        if recorder:
            # aggregate counters next to the spans: the serving tier's
            # slow-query log snapshots these as per-round deltas
            comm = ex.stats.as_dict()
            recorder.inc("sharded.supersteps", int(counters["steps"]))
            recorder.inc("sharded.relaxations", int(counters["relaxations"]))
            recorder.inc("sharded.exchange.rounds", int(comm["exchanges"]))
            recorder.inc(
                "sharded.exchange.entries_carried", int(comm["entries_carried"])
            )
        counters["comm"] = ex.stats.as_dict()
        counters["comm"]["per_superstep"] = ex.stats.per_superstep()
        return counters

    def default_params(self, graph: Graph) -> dict:
        return {
            "delta": default_delta_star(graph),
            "num_shards": default_num_shards(graph),
            "partitioner": "contiguous",
        }


def _bind_step(fn, shard, bound):
    return lambda: fn(shard, bound)


register_stepper(ShardedDeltaStepper())

"""GraphBLAS semirings (``GrB_Semiring``): an add-monoid and a multiply op.

The paper's whole point rests on one of these: edge relaxation is a
vector-matrix product over ``(min, +)`` instead of ``(+, ×)``.  The
predefined semirings here cover the SSSP kernels plus the ones needed by
the extension algorithms (BFS: ``LOR_LAND``/``ANY_PAIR``; triangle
counting and k-truss: ``PLUS_PAIR``/``PLUS_TIMES``).
"""

from __future__ import annotations

from dataclasses import dataclass

from . import binaryop as bop
from .binaryop import BinaryOp
from .monoid import (
    ANY_MONOID,
    LAND_MONOID,
    LOR_MONOID,
    MAX_MONOID,
    MIN_MONOID,
    PLUS_MONOID,
    Monoid,
)
from .types import BOOL, DataType

__all__ = [
    "Semiring",
    "MIN_PLUS",
    "MIN_TIMES",
    "MIN_FIRST",
    "MIN_SECOND",
    "MIN_MIN",
    "MAX_PLUS",
    "PLUS_TIMES",
    "PLUS_MIN",
    "PLUS_PAIR",
    "LOR_LAND",
    "ANY_PAIR",
    "ANY_SECOND",
]


@dataclass(frozen=True)
class Semiring:
    """``(add_monoid, multiply_op)`` pair.

    ``multiply`` combines one value from each operand along the shared
    dimension; ``add`` reduces the combined products per output slot.
    """

    name: str
    add: Monoid
    multiply: BinaryOp

    def result_type(self, a: DataType, b: DataType) -> DataType:
        """Domain of the product values before reduction."""
        return self.multiply.result_type(a, b)

    @staticmethod
    def define(add: Monoid, multiply: BinaryOp, name: str = "udf_semiring") -> "Semiring":
        """Create a user-defined semiring."""
        return Semiring(name=name, add=add, multiply=multiply)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Semiring<{self.name}>"


#: tropical semiring — SSSP edge relaxation (``tReq = A_L' (min.+) (t ∘ tBi)``)
MIN_PLUS = Semiring("MIN_PLUS", MIN_MONOID, bop.PLUS)
MIN_TIMES = Semiring("MIN_TIMES", MIN_MONOID, bop.TIMES)
MIN_FIRST = Semiring("MIN_FIRST", MIN_MONOID, bop.FIRST)
MIN_SECOND = Semiring("MIN_SECOND", MIN_MONOID, bop.SECOND)
MIN_MIN = Semiring("MIN_MIN", MIN_MONOID, bop.MIN)
MAX_PLUS = Semiring("MAX_PLUS", MAX_MONOID, bop.PLUS)

#: conventional arithmetic semiring
PLUS_TIMES = Semiring("PLUS_TIMES", PLUS_MONOID, bop.TIMES)
PLUS_MIN = Semiring("PLUS_MIN", PLUS_MONOID, bop.MIN)
#: structural counting (triangle counting / k-truss support computation)
PLUS_PAIR = Semiring("PLUS_PAIR", PLUS_MONOID, bop.PAIR)

#: boolean reachability (BFS frontier expansion)
LOR_LAND = Semiring("LOR_LAND", LOR_MONOID, bop.LAND)
ANY_PAIR = Semiring("ANY_PAIR", ANY_MONOID, bop.PAIR)
ANY_SECOND = Semiring("ANY_SECOND", ANY_MONOID, bop.SECOND)

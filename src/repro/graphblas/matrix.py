"""``GrB_Matrix``: a typed sparse matrix stored in CSR.

Row-major compressed storage (``indptr`` / ``col_indices`` / ``values``,
columns sorted within each row) matches the access pattern of the paper's
hot loop — ``GrB_vxm`` pushes along the rows of the operand matrix.  A
transpose is materialized on demand and cached until the matrix mutates
(adjacency matrices in the SSSP are read-only after construction, so the
cache is effectively free).

Element-wise and masked operations run in a flattened key space
(``row * ncols + col``) shared with :class:`~repro.graphblas.vector.Vector`
so the write pipeline in :mod:`repro.graphblas.mask` is common code.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .info import DimensionMismatch, InvalidIndex, InvalidValue, NoValue
from .sparseutil import (
    INDEX_DTYPE,
    as_index_array,
    dedupe_coo,
)
from .types import DataType, FP64, from_dtype

__all__ = ["Matrix"]


class Matrix:
    """A sparse GraphBLAS matrix of fixed logical shape ``nrows × ncols``."""

    __slots__ = ("nrows", "ncols", "dtype", "_indptr", "_col_indices", "_values", "_transpose_cache")

    def __init__(self, dtype: DataType, nrows: int, ncols: int):
        if nrows < 0 or ncols < 0:
            raise InvalidValue(f"negative matrix shape ({nrows}, {ncols})")
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.dtype = from_dtype(dtype)
        self._indptr = np.zeros(self.nrows + 1, dtype=INDEX_DTYPE)
        self._col_indices = np.empty(0, dtype=INDEX_DTYPE)
        self._values = np.empty(0, dtype=self.dtype.np_dtype)
        self._transpose_cache = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def new(cls, dtype: DataType = FP64, nrows: int = 0, ncols: int = 0) -> "Matrix":
        """``GrB_Matrix_new`` — an empty matrix of the given domain/shape."""
        return cls(dtype, nrows, ncols)

    @classmethod
    def from_coo(
        cls,
        rows: Iterable[int],
        cols: Iterable[int],
        values,
        nrows: int,
        ncols: int,
        dtype: DataType | None = None,
        dup_op=None,
    ) -> "Matrix":
        """Build from COO triples (``GrB_Matrix_build``).

        Duplicates are combined with *dup_op*; without one the last wins.
        """
        r = as_index_array(rows)
        c = as_index_array(cols)
        vals = np.asarray(values)
        if vals.ndim == 0:
            vals = np.broadcast_to(vals, r.shape).copy()
        if not (len(r) == len(c) == len(vals)):
            raise DimensionMismatch("rows/cols/values length mismatch")
        if len(r):
            if r.min() < 0 or r.max() >= nrows:
                raise InvalidIndex(f"row index out of range for nrows={nrows}")
            if c.min() < 0 or c.max() >= ncols:
                raise InvalidIndex(f"col index out of range for ncols={ncols}")
        dtype = from_dtype(dtype) if dtype is not None else from_dtype(vals.dtype)
        dup_ufunc = None
        if dup_op is not None:
            dup_ufunc = dup_op.ufunc if dup_op.ufunc is not None else np.frompyfunc(dup_op.fn, 2, 1)
        r, c, vals = dedupe_coo(r, c, vals, max(ncols, 1), dup_ufunc)
        out = cls(dtype, nrows, ncols)
        out._set_csr_from_sorted_coo(r, c, dtype.cast_array(vals))
        return out

    @classmethod
    def from_dense(cls, array, missing=None, dtype: DataType | None = None) -> "Matrix":
        """Build from a 2-D dense array, dropping entries equal to *missing*."""
        arr = np.asarray(array)
        if arr.ndim != 2:
            raise DimensionMismatch("from_dense needs a 2-D array")
        dtype = from_dtype(dtype) if dtype is not None else from_dtype(arr.dtype)
        if missing is None:
            keep = np.ones(arr.shape, dtype=bool)
        elif isinstance(missing, float) and np.isnan(missing):
            keep = ~np.isnan(arr)
        else:
            keep = arr != missing
        r, c = np.nonzero(keep)
        out = cls(dtype, arr.shape[0], arr.shape[1])
        out._set_csr_from_sorted_coo(
            r.astype(INDEX_DTYPE), c.astype(INDEX_DTYPE), dtype.cast_array(arr[keep])
        )
        return out

    @classmethod
    def from_csr(
        cls,
        indptr: np.ndarray,
        col_indices: np.ndarray,
        values: np.ndarray,
        ncols: int,
        dtype: DataType | None = None,
    ) -> "Matrix":
        """Zero-copy adoption of CSR arrays (cols must be sorted per row)."""
        vals = np.asarray(values)
        dtype = from_dtype(dtype) if dtype is not None else from_dtype(vals.dtype)
        out = cls(dtype, len(indptr) - 1, ncols)
        out._indptr = as_index_array(indptr)
        out._col_indices = as_index_array(col_indices)
        out._values = np.ascontiguousarray(vals, dtype=dtype.np_dtype)
        return out

    @classmethod
    def identity(cls, n: int, value=1, dtype: DataType | None = None) -> "Matrix":
        """n×n identity-pattern matrix with *value* on the diagonal."""
        vals = np.full(n, value)
        return cls.from_coo(np.arange(n), np.arange(n), vals, n, n, dtype=dtype)

    # -- internal data management -------------------------------------------

    def _invalidate(self) -> None:
        self._transpose_cache = None

    def _set_csr_from_sorted_coo(self, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray) -> None:
        """Adopt row-major sorted, duplicate-free COO triples."""
        counts = np.bincount(rows, minlength=self.nrows).astype(INDEX_DTYPE) if len(rows) else np.zeros(self.nrows, dtype=INDEX_DTYPE)
        self._indptr = np.concatenate([[0], np.cumsum(counts)]).astype(INDEX_DTYPE)
        self._col_indices = cols
        self._values = np.ascontiguousarray(vals, dtype=self.dtype.np_dtype)
        self._invalidate()

    # Key-space API shared with Vector (mask pipeline, ewise ops).
    def _keys(self) -> np.ndarray:
        rows = self.row_ids_expanded()
        return rows * np.int64(max(self.ncols, 1)) + self._col_indices

    def _set_keys(self, keys: np.ndarray, values: np.ndarray) -> None:
        ncols = max(self.ncols, 1)
        rows = (keys // ncols).astype(INDEX_DTYPE)
        cols = (keys % ncols).astype(INDEX_DTYPE)
        self._set_csr_from_sorted_coo(rows, cols, values)

    def _check_same_shape(self, other, what: str) -> None:
        if (
            not isinstance(other, Matrix)
            or other.nrows != self.nrows
            or other.ncols != self.ncols
        ):
            raise DimensionMismatch(
                f"{what} shape mismatch: expected {self.nrows}x{self.ncols} matrix"
            )

    # -- basic properties ------------------------------------------------------

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer (read-only view)."""
        v = self._indptr.view()
        v.flags.writeable = False
        return v

    @property
    def col_indices(self) -> np.ndarray:
        """CSR column indices, sorted within each row (read-only view)."""
        v = self._col_indices.view()
        v.flags.writeable = False
        return v

    @property
    def values(self) -> np.ndarray:
        """CSR values parallel to :attr:`col_indices` (read-only view)."""
        v = self._values.view()
        v.flags.writeable = False
        return v

    @property
    def nvals(self) -> int:
        """``GrB_Matrix_nvals`` — number of stored entries."""
        return len(self._col_indices)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Matrix<{self.dtype.name}, shape=({self.nrows}, {self.ncols}), "
            f"nvals={self.nvals}>"
        )

    def row_ids_expanded(self) -> np.ndarray:
        """Row id of every stored entry (COO row array from CSR)."""
        return np.repeat(
            np.arange(self.nrows, dtype=INDEX_DTYPE), np.diff(self._indptr)
        )

    def row_degrees(self) -> np.ndarray:
        """Stored-entry count per row."""
        return np.diff(self._indptr)

    def row(self, i: int):
        """``(col_indices, values)`` views of row *i* (zero-copy slices)."""
        lo, hi = self._indptr[i], self._indptr[i + 1]
        return self._col_indices[lo:hi], self._values[lo:hi]

    # -- element access ---------------------------------------------------------

    def extract_element(self, i: int, j: int):
        """``GrB_Matrix_extractElement`` — raises :class:`NoValue` if absent."""
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise InvalidIndex(f"({i}, {j}) out of range for {self.shape}")
        lo, hi = self._indptr[i], self._indptr[i + 1]
        seg = self._col_indices[lo:hi]
        pos = np.searchsorted(seg, j)
        if pos < len(seg) and seg[pos] == j:
            return self._values[lo + pos]
        raise NoValue(f"no stored value at ({i}, {j})")

    def get(self, i: int, j: int, default=None):
        """Like :meth:`extract_element` but returns *default* when absent."""
        try:
            return self.extract_element(i, j)
        except NoValue:
            return default

    def set_element(self, i: int, j: int, value) -> "Matrix":
        """``GrB_Matrix_setElement`` — insert or overwrite one entry.

        O(nnz) worst case on insert; fine for construction/test use, hot
        paths should build with :meth:`from_coo`.
        """
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise InvalidIndex(f"({i}, {j}) out of range for {self.shape}")
        lo, hi = int(self._indptr[i]), int(self._indptr[i + 1])
        seg = self._col_indices[lo:hi]
        pos = int(np.searchsorted(seg, j))
        value = self.dtype.cast_scalar(value)
        if pos < len(seg) and seg[pos] == j:
            self._values[lo + pos] = value
        else:
            at = lo + pos
            self._col_indices = np.insert(self._col_indices, at, j)
            self._values = np.insert(self._values, at, value)
            self._indptr = self._indptr.copy()
            self._indptr[i + 1 :] += 1
        self._invalidate()
        return self

    # -- whole-object operations ---------------------------------------------

    def clear(self) -> "Matrix":
        """``GrB_Matrix_clear`` — drop all entries (shape/domain kept)."""
        self._indptr = np.zeros(self.nrows + 1, dtype=INDEX_DTYPE)
        self._col_indices = np.empty(0, dtype=INDEX_DTYPE)
        self._values = np.empty(0, dtype=self.dtype.np_dtype)
        self._invalidate()
        return self

    def dup(self) -> "Matrix":
        """``GrB_Matrix_dup`` — deep copy."""
        out = Matrix(self.dtype, self.nrows, self.ncols)
        out._indptr = self._indptr.copy()
        out._col_indices = self._col_indices.copy()
        out._values = self._values.copy()
        return out

    def to_coo(self):
        """Return ``(rows, cols, values)`` copies (``extractTuples``)."""
        return self.row_ids_expanded(), self._col_indices.copy(), self._values.copy()

    def to_dense(self, fill=0) -> np.ndarray:
        """Densify with *fill* in unstored positions."""
        out = np.full((self.nrows, self.ncols), fill, dtype=self.dtype.np_dtype)
        out[self.row_ids_expanded(), self._col_indices] = self._values
        return out

    def isequal(self, other: "Matrix") -> bool:
        """Same shape, same pattern, identical values."""
        return (
            isinstance(other, Matrix)
            and self.shape == other.shape
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._col_indices, other._col_indices)
            and np.array_equal(self._values, other._values)
        )

    def transpose(self) -> "Matrix":
        """Materialized transpose (cached until this matrix mutates)."""
        if self._transpose_cache is None:
            rows, cols, vals = self.to_coo()
            # counting-sort by (new row = old col): stable argsort keeps the
            # secondary (new col = old row) order because COO is row-major.
            order = np.argsort(cols, kind="stable")
            t = Matrix(self.dtype, self.ncols, self.nrows)
            t._set_csr_from_sorted_coo(cols[order], rows[order], vals[order])
            self._transpose_cache = t
        return self._transpose_cache

    @property
    def T(self) -> "Matrix":
        """Alias of :meth:`transpose`."""
        return self.transpose()

    def diag(self):
        """The stored diagonal as a :class:`~repro.graphblas.vector.Vector`."""
        from .vector import Vector

        rows = self.row_ids_expanded()
        on_diag = rows == self._col_indices
        out = Vector(self.dtype, min(self.nrows, self.ncols))
        out._set_data(rows[on_diag], self._values[on_diag])
        return out

    def wait(self) -> "Matrix":
        """``GrB_Matrix_wait`` — no-op (this implementation is eager)."""
        return self

    # -- delegated operations ----------------------------------------------------

    def apply(self, op, mask=None, accum=None, desc=None, out=None) -> "Matrix":
        """Map stored values through a unary op (``GrB_Matrix_apply``)."""
        from . import operations

        return operations.apply(
            out if out is not None else Matrix(op.result_type(self.dtype), self.nrows, self.ncols),
            op,
            self,
            mask=mask,
            accum=accum,
            desc=desc,
        )

    def select(self, op, thunk=None, mask=None, accum=None, desc=None, out=None) -> "Matrix":
        """Keep entries passing an index-unary predicate (``GrB_select``)."""
        from . import operations

        return operations.select(
            out if out is not None else Matrix(self.dtype, self.nrows, self.ncols),
            op,
            self,
            thunk,
            mask=mask,
            accum=accum,
            desc=desc,
        )

    def ewise_add(self, other: "Matrix", op, mask=None, accum=None, desc=None, out=None) -> "Matrix":
        """Union element-wise combine (``GrB_eWiseAdd``)."""
        from . import operations

        dtype = op.result_type(self.dtype, other.dtype)
        return operations.ewise_add(
            out if out is not None else Matrix(dtype, self.nrows, self.ncols),
            op,
            self,
            other,
            mask=mask,
            accum=accum,
            desc=desc,
        )

    def ewise_mult(self, other: "Matrix", op, mask=None, accum=None, desc=None, out=None) -> "Matrix":
        """Intersection element-wise combine (``GrB_eWiseMult``)."""
        from . import operations

        dtype = op.result_type(self.dtype, other.dtype)
        return operations.ewise_mult(
            out if out is not None else Matrix(dtype, self.nrows, self.ncols),
            op,
            self,
            other,
            mask=mask,
            accum=accum,
            desc=desc,
        )

    def mxv(self, vector, semiring, mask=None, accum=None, desc=None, out=None):
        """Matrix × column-vector over a semiring (``GrB_mxv``)."""
        from . import operations
        from .vector import Vector

        dtype = semiring.result_type(self.dtype, vector.dtype)
        return operations.mxv(
            out if out is not None else Vector(dtype, self.nrows),
            semiring,
            self,
            vector,
            mask=mask,
            accum=accum,
            desc=desc,
        )

    def mxm(self, other: "Matrix", semiring, mask=None, accum=None, desc=None, out=None) -> "Matrix":
        """Matrix × matrix over a semiring (``GrB_mxm``)."""
        from . import operations

        dtype = semiring.result_type(self.dtype, other.dtype)
        return operations.mxm(
            out if out is not None else Matrix(dtype, self.nrows, other.ncols),
            semiring,
            self,
            other,
            mask=mask,
            accum=accum,
            desc=desc,
        )

    def reduce_rows(self, monoid, mask=None, accum=None, desc=None, out=None):
        """Per-row reduction to a vector (``GrB_Matrix_reduce_Monoid``)."""
        from . import operations

        return operations.reduce_matrix_to_vector(
            out, monoid, self, mask=mask, accum=accum, desc=desc
        )

    def reduce_scalar(self, monoid, dtype: DataType | None = None):
        """Whole-matrix reduction to a scalar."""
        from . import operations

        return operations.reduce_matrix_to_scalar(monoid, self, dtype=dtype)

    def kronecker(self, other: "Matrix", op, out=None) -> "Matrix":
        """Kronecker product with *op* as the multiply (``GrB_kronecker``)."""
        from . import operations

        return operations.kronecker(out, op, self, other)

    def extract_submatrix(self, rows, cols, out=None) -> "Matrix":
        """Submatrix extraction (``GrB_Matrix_extract``)."""
        from . import operations

        return operations.extract_submatrix(out, self, rows, cols)

"""GraphBLAS binary operators (``GrB_BinaryOp``).

Binary operators combine two value arrays element-by-element.  They are used
directly by the element-wise operations, as accumulators, as the "multiply"
of a semiring, and (via :mod:`repro.graphblas.monoid`) as the "add".

Output-domain policy mirrors the spec's predefined operator families:
comparison operators (``LT`` et al.) produce ``BOOL``; ``FIRST``/``SECOND``
keep the corresponding operand's domain; arithmetic promotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .types import BOOL, DataType, promote

__all__ = [
    "BinaryOp",
    "FIRST",
    "SECOND",
    "PAIR",
    "MIN",
    "MAX",
    "PLUS",
    "MINUS",
    "RMINUS",
    "TIMES",
    "DIV",
    "RDIV",
    "EQ",
    "NE",
    "GT",
    "LT",
    "GE",
    "LE",
    "LOR",
    "LAND",
    "LXOR",
    "ANY",
]


@dataclass(frozen=True)
class BinaryOp:
    """A named binary operator ``z = f(x, y)`` on value arrays.

    Attributes
    ----------
    name:
        Diagnostic name.
    fn:
        Vectorized two-argument callable.
    out_policy:
        ``"promote"`` (NumPy promotion of operand domains), ``"bool"``,
        ``"first"``, ``"second"``, or a fixed :class:`DataType`.
    ufunc:
        The underlying NumPy ufunc when one exists.  Monoids require it
        for ``reduceat`` group reductions; pure-Python ops may leave it
        unset and remain usable everywhere except as a monoid.
    commutative:
        Declared commutativity — the paper's §V.B pitfall is precisely
        that ``eWiseAdd`` is only intuitive for commutative operators.
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    out_policy: object = "promote"
    ufunc: np.ufunc | None = None
    commutative: bool = False

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.asarray(self.fn(x, y))

    def result_type(self, a: DataType, b: DataType) -> DataType:
        """Domain of the result given operand domains."""
        policy = self.out_policy
        if policy == "promote":
            return promote(a, b)
        if policy == "bool":
            return BOOL
        if policy == "first":
            return a
        if policy == "second":
            return b
        if isinstance(policy, DataType):
            return policy
        raise ValueError(f"bad out_policy {policy!r} on {self.name}")

    @staticmethod
    def define(
        fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
        name: str = "udf",
        out_policy: object = "promote",
        ufunc: np.ufunc | None = None,
        commutative: bool = False,
    ) -> "BinaryOp":
        """Create a user-defined binary op from a vectorized callable."""
        return BinaryOp(name=name, fn=fn, out_policy=out_policy, ufunc=ufunc, commutative=commutative)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"BinaryOp<{self.name}>"


def _first(x, y):
    return x


def _second(x, y):
    return y


def _pair(x, y):
    return np.ones_like(x)


def _any(x, y):
    # ANY may return either operand; we deterministically pick the first.
    return x


def _rminus(x, y):
    return y - x


def _safe_div(x, y):
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        return np.divide(x, y)


def _safe_rdiv(x, y):
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        return np.divide(y, x)


FIRST = BinaryOp("FIRST", _first, out_policy="first")
SECOND = BinaryOp("SECOND", _second, out_policy="second")
PAIR = BinaryOp("PAIR", _pair, out_policy="first", commutative=True)
MIN = BinaryOp("MIN", np.minimum, ufunc=np.minimum, commutative=True)
MAX = BinaryOp("MAX", np.maximum, ufunc=np.maximum, commutative=True)
PLUS = BinaryOp("PLUS", np.add, ufunc=np.add, commutative=True)
MINUS = BinaryOp("MINUS", np.subtract, ufunc=np.subtract)
RMINUS = BinaryOp("RMINUS", _rminus)
TIMES = BinaryOp("TIMES", np.multiply, ufunc=np.multiply, commutative=True)
DIV = BinaryOp("DIV", _safe_div)
RDIV = BinaryOp("RDIV", _safe_rdiv)
EQ = BinaryOp("EQ", np.equal, out_policy="bool", ufunc=np.equal, commutative=True)
NE = BinaryOp("NE", np.not_equal, out_policy="bool", ufunc=np.not_equal, commutative=True)
GT = BinaryOp("GT", np.greater, out_policy="bool", ufunc=np.greater)
LT = BinaryOp("LT", np.less, out_policy="bool", ufunc=np.less)
GE = BinaryOp("GE", np.greater_equal, out_policy="bool", ufunc=np.greater_equal)
LE = BinaryOp("LE", np.less_equal, out_policy="bool", ufunc=np.less_equal)
LOR = BinaryOp("LOR", np.logical_or, out_policy="bool", ufunc=np.logical_or, commutative=True)
LAND = BinaryOp("LAND", np.logical_and, out_policy="bool", ufunc=np.logical_and, commutative=True)
LXOR = BinaryOp("LXOR", np.logical_xor, out_policy="bool", ufunc=np.logical_xor, commutative=True)
ANY = BinaryOp("ANY", _any, out_policy="first", commutative=True)

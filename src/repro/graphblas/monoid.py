"""GraphBLAS monoids (``GrB_Monoid``): associative binary op + identity.

Monoids drive reductions (``GrB_reduce``) and form the "add" of a semiring.
The grouped reductions inside ``vxm``/``mxv``/``mxm`` need a NumPy ufunc
(for ``reduceat``); all predefined monoids have one.  User-defined monoids
built from pure-Python binary ops get a ``frompyfunc`` fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import binaryop as bop
from .binaryop import BinaryOp
from .info import DomainMismatch
from .types import DataType, default_identity_for

__all__ = [
    "Monoid",
    "MIN_MONOID",
    "MAX_MONOID",
    "PLUS_MONOID",
    "TIMES_MONOID",
    "LOR_MONOID",
    "LAND_MONOID",
    "LXOR_MONOID",
    "EQ_MONOID",
    "ANY_MONOID",
]


@dataclass(frozen=True)
class Monoid:
    """An associative, commutative binary operator with an identity.

    Attributes
    ----------
    name:
        Diagnostic name.
    binaryop:
        The underlying :class:`BinaryOp`.
    identity_kind:
        Key understood by
        :func:`repro.graphblas.types.default_identity_for`, which yields a
        domain-specific identity (e.g. ``+inf`` for FP64 MIN, ``INT32_MAX``
        for INT32 MIN).
    explicit_identity:
        Overrides ``identity_kind`` when set (user-defined monoids).
    """

    name: str
    binaryop: BinaryOp
    identity_kind: str = "plus"
    explicit_identity: object = None
    terminal: object = field(default=None, compare=False)

    def identity(self, dtype: DataType):
        """The identity element in domain *dtype*."""
        if self.explicit_identity is not None:
            return dtype.cast_scalar(self.explicit_identity)
        return dtype.cast_scalar(default_identity_for(dtype, self.identity_kind))

    @property
    def ufunc(self) -> np.ufunc:
        """A ufunc usable with ``reduce``/``reduceat`` for this monoid."""
        uf = self.binaryop.ufunc
        if uf is not None:
            return uf
        return np.frompyfunc(self.binaryop.fn, 2, 1)

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.binaryop(x, y)

    def reduce_all(self, values: np.ndarray, dtype: DataType):
        """Reduce a value array to one scalar (identity when empty)."""
        if len(values) == 0:
            return self.identity(dtype)
        uf = self.binaryop.ufunc
        if uf is not None:
            return dtype.cast_scalar(uf.reduce(dtype.cast_array(values)))
        acc = values[0]
        for v in values[1:]:
            acc = self.binaryop.fn(acc, v)
        return dtype.cast_scalar(acc)

    @staticmethod
    def define(binaryop: BinaryOp, identity, name: str = "udf_monoid", terminal=None) -> "Monoid":
        """Create a user-defined monoid with an explicit identity element."""
        if not binaryop.commutative:
            # The spec requires associativity; commutativity is required for
            # monoids used in reductions with unordered evaluation.  We flag
            # this eagerly — it is exactly the class of bug §V.B warns about.
            raise DomainMismatch(
                f"monoid over non-commutative operator {binaryop.name!r}"
            )
        return Monoid(name=name, binaryop=binaryop, explicit_identity=identity, terminal=terminal)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Monoid<{self.name}>"


MIN_MONOID = Monoid("MIN", bop.MIN, identity_kind="min", terminal=None)
MAX_MONOID = Monoid("MAX", bop.MAX, identity_kind="max")
PLUS_MONOID = Monoid("PLUS", bop.PLUS, identity_kind="plus")
TIMES_MONOID = Monoid("TIMES", bop.TIMES, identity_kind="times")
LOR_MONOID = Monoid("LOR", bop.LOR, identity_kind="lor")
LAND_MONOID = Monoid("LAND", bop.LAND, identity_kind="land")
LXOR_MONOID = Monoid("LXOR", bop.LXOR, identity_kind="lxor")
EQ_MONOID = Monoid("EQ", bop.EQ, identity_kind="eq")
ANY_MONOID = Monoid("ANY", bop.ANY, identity_kind="any")

"""Import/export between GraphBLAS objects and external sparse formats.

Covers the SuiteSparse-style pack/unpack surface the paper's ecosystem
relies on: COO triples, CSR/CSC arrays, dense NumPy arrays, and
``scipy.sparse`` interop (used by tests as an independent oracle).
"""

from __future__ import annotations

import numpy as np

from .info import DimensionMismatch
from .matrix import Matrix
from .sparseutil import INDEX_DTYPE
from .types import DataType, from_dtype
from .vector import Vector

__all__ = [
    "matrix_from_scipy",
    "matrix_to_scipy",
    "matrix_from_csc",
    "matrix_to_csc",
    "vector_from_numpy",
    "vector_to_numpy",
]


def matrix_from_scipy(sp_matrix, dtype: DataType | None = None) -> Matrix:
    """Build a :class:`Matrix` from any ``scipy.sparse`` matrix."""
    csr = sp_matrix.tocsr()
    csr.sum_duplicates()
    csr.sort_indices()
    vals = csr.data
    dtype = from_dtype(dtype) if dtype is not None else from_dtype(vals.dtype)
    return Matrix.from_csr(
        csr.indptr.astype(INDEX_DTYPE),
        csr.indices.astype(INDEX_DTYPE),
        dtype.cast_array(vals),
        ncols=csr.shape[1],
        dtype=dtype,
    )


def matrix_to_scipy(A: Matrix):
    """Export to ``scipy.sparse.csr_array``."""
    import scipy.sparse as sp

    return sp.csr_array(
        (A.values.copy(), A.col_indices.copy(), A.indptr.copy()),
        shape=(A.nrows, A.ncols),
    )


def matrix_from_csc(indptr, row_indices, values, nrows: int, dtype: DataType | None = None) -> Matrix:
    """Build from CSC arrays (transpose of a CSR adoption)."""
    csc_as_csr = Matrix.from_csr(
        np.asarray(indptr),
        np.asarray(row_indices),
        np.asarray(values),
        ncols=nrows,
        dtype=dtype,
    )
    return csc_as_csr.transpose()


def matrix_to_csc(A: Matrix):
    """Export ``(indptr, row_indices, values)`` in CSC orientation."""
    t = A.transpose()
    return t.indptr.copy(), t.col_indices.copy(), t.values.copy()


def vector_from_numpy(array, missing=None, dtype: DataType | None = None) -> Vector:
    """Alias of :meth:`Vector.from_dense` for API symmetry."""
    return Vector.from_dense(array, missing=missing, dtype=dtype)


def vector_to_numpy(v: Vector, fill=0) -> np.ndarray:
    """Alias of :meth:`Vector.to_dense`."""
    if not isinstance(v, Vector):
        raise DimensionMismatch("vector_to_numpy expects a Vector")
    return v.to_dense(fill)

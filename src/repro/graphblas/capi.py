"""C-flavoured GraphBLAS facade: ``GrB_*`` functions returning ``GrB_Info``.

The paper implements delta-stepping against the GraphBLAS *C* API
(Fig. 2).  This module reproduces that calling convention on top of the
Pythonic layer so the listing transliterates statement-for-statement:

- every function returns an :class:`~repro.graphblas.info.Info` code
  instead of raising (exceptions are caught and mapped);
- output parameters (``GrB_Vector *w``, ``GrB_Index *n``) become
  :class:`Ref` cells;
- ``GrB_NULL`` is :data:`GrB_NULL` (``None``);
- the predefined objects carry their C names (``GrB_FP64``,
  ``GrB_MIN_FP64``, ``GrB_LT_FP64``, ``GrB_IDENTITY_FP64``, ...).

Example (paper Fig. 2, line 43)::

    // GrB_vxm(tReq, GrB_NULL, GrB_NULL, min_plus_sring, tmasked, Al, clear_desc);
    info = GrB_vxm(tReq, GrB_NULL, GrB_NULL, MIN_PLUS, tmasked, Al, clear_desc)
"""

from __future__ import annotations

import numpy as np

from . import operations as ops
from .binaryop import (
    EQ as GrB_EQ,
    FIRST as GrB_FIRST,
    GE as GrB_GE,
    GT as GrB_GT,
    LAND as GrB_LAND_op,
    LE as GrB_LE,
    LOR as GrB_LOR_op,
    LT as GrB_LT,
    MAX as GrB_MAX_op,
    MIN as GrB_MIN_op,
    PLUS as GrB_PLUS_op,
    SECOND as GrB_SECOND,
    TIMES as GrB_TIMES_op,
)
from .descriptor import NULL_DESC, REPLACE
from .info import Info, NoValue, info_of
from .matrix import Matrix
from .monoid import MIN_MONOID, PLUS_MONOID
from .semiring import MIN_PLUS, PLUS_TIMES
from .types import BOOL, FP32, FP64, INT32, INT64, UINT64
from .unaryop import IDENTITY
from .vector import Vector

__all__ = [
    "Ref",
    "GrB_NULL",
    "GrB_ALL",
    # types
    "GrB_BOOL",
    "GrB_INT32",
    "GrB_INT64",
    "GrB_UINT64",
    "GrB_FP32",
    "GrB_FP64",
    # predefined operators (C names)
    "GrB_IDENTITY_FP64",
    "GrB_IDENTITY_BOOL",
    "GrB_MIN_FP64",
    "GrB_MAX_FP64",
    "GrB_PLUS_FP64",
    "GrB_TIMES_FP64",
    "GrB_LT_FP64",
    "GrB_LE_FP64",
    "GrB_GT_FP64",
    "GrB_GE_FP64",
    "GrB_EQ_FP64",
    "GrB_LOR",
    "GrB_LAND",
    "GrB_FIRST_FP64",
    "GrB_SECOND_FP64",
    "GrB_MIN_MONOID_FP64",
    "GrB_PLUS_MONOID_FP64",
    "GrB_MIN_PLUS_SEMIRING_FP64",
    "GrB_PLUS_TIMES_SEMIRING_FP64",
    "GrB_DESC_R",
    # functions
    "GrB_Vector_new",
    "GrB_Matrix_new",
    "GrB_Vector_dup",
    "GrB_Matrix_dup",
    "GrB_Vector_clear",
    "GrB_Matrix_clear",
    "GrB_Vector_nvals",
    "GrB_Matrix_nvals",
    "GrB_Vector_size",
    "GrB_Matrix_nrows",
    "GrB_Matrix_ncols",
    "GrB_Vector_setElement",
    "GrB_Matrix_setElement",
    "GrB_Vector_extractElement",
    "GrB_Matrix_extractElement",
    "GrB_Vector_removeElement",
    "GrB_Vector_build",
    "GrB_Matrix_build",
    "GrB_Vector_extractTuples",
    "GrB_Matrix_extractTuples",
    "GrB_apply",
    "GrB_Vector_apply",
    "GrB_Matrix_apply",
    "GrB_eWiseAdd",
    "GrB_eWiseMult",
    "GrB_vxm",
    "GrB_mxv",
    "GrB_mxm",
    "GrB_reduce",
    "GrB_select",
    "GrB_extract",
    "GrB_assign",
    "GrB_transpose",
    "GrB_wait",
    "GrB_free",
]


class Ref:
    """Emulates a C output pointer (``GrB_Vector *``, ``GrB_Index *``)."""

    __slots__ = ("value",)

    def __init__(self, value=None):
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ref({self.value!r})"


#: ``GrB_NULL`` — pass where the C API accepts a NULL mask/accum/descriptor.
GrB_NULL = None
#: ``GrB_ALL`` — pass where the C API accepts the all-indices marker.
GrB_ALL = None

GrB_BOOL = BOOL
GrB_INT32 = INT32
GrB_INT64 = INT64
GrB_UINT64 = UINT64
GrB_FP32 = FP32
GrB_FP64 = FP64

GrB_IDENTITY_FP64 = IDENTITY
GrB_IDENTITY_BOOL = IDENTITY
GrB_MIN_FP64 = GrB_MIN_op
GrB_MAX_FP64 = GrB_MAX_op
GrB_PLUS_FP64 = GrB_PLUS_op
GrB_TIMES_FP64 = GrB_TIMES_op
GrB_LT_FP64 = GrB_LT
GrB_LE_FP64 = GrB_LE
GrB_GT_FP64 = GrB_GT
GrB_GE_FP64 = GrB_GE
GrB_EQ_FP64 = GrB_EQ
GrB_LOR = GrB_LOR_op
GrB_LAND = GrB_LAND_op
GrB_FIRST_FP64 = GrB_FIRST
GrB_SECOND_FP64 = GrB_SECOND
GrB_MIN_MONOID_FP64 = MIN_MONOID
GrB_PLUS_MONOID_FP64 = PLUS_MONOID
GrB_MIN_PLUS_SEMIRING_FP64 = MIN_PLUS
GrB_PLUS_TIMES_SEMIRING_FP64 = PLUS_TIMES
#: descriptor with OUTP=REPLACE — the paper's ``clear_desc``
GrB_DESC_R = REPLACE


def _guard(fn):
    """Run *fn*, translating exceptions into Info codes."""
    try:
        fn()
    except Exception as exc:  # noqa: BLE001 - the C API reports, never raises
        return info_of(exc)
    return Info.SUCCESS


# -- object lifetime ---------------------------------------------------------

def GrB_Vector_new(ref: Ref, dtype, size: int) -> Info:
    return _guard(lambda: setattr(ref, "value", Vector.new(dtype, size)))


def GrB_Matrix_new(ref: Ref, dtype, nrows: int, ncols: int) -> Info:
    return _guard(lambda: setattr(ref, "value", Matrix.new(dtype, nrows, ncols)))


def GrB_Vector_dup(ref: Ref, v: Vector) -> Info:
    return _guard(lambda: setattr(ref, "value", v.dup()))


def GrB_Matrix_dup(ref: Ref, a: Matrix) -> Info:
    return _guard(lambda: setattr(ref, "value", a.dup()))


def GrB_Vector_clear(v: Vector) -> Info:
    return _guard(v.clear)


def GrB_Matrix_clear(a: Matrix) -> Info:
    return _guard(a.clear)


def GrB_free(_obj) -> Info:
    """No-op — Python objects are garbage collected."""
    return Info.SUCCESS


def GrB_wait(_obj=None, _mode=None) -> Info:
    """No-op — this implementation executes eagerly."""
    return Info.SUCCESS


# -- introspection -------------------------------------------------------------

def GrB_Vector_nvals(ref: Ref, v: Vector) -> Info:
    return _guard(lambda: setattr(ref, "value", v.nvals))


def GrB_Matrix_nvals(ref: Ref, a: Matrix) -> Info:
    return _guard(lambda: setattr(ref, "value", a.nvals))


def GrB_Vector_size(ref: Ref, v: Vector) -> Info:
    return _guard(lambda: setattr(ref, "value", v.size))


def GrB_Matrix_nrows(ref: Ref, a: Matrix) -> Info:
    return _guard(lambda: setattr(ref, "value", a.nrows))


def GrB_Matrix_ncols(ref: Ref, a: Matrix) -> Info:
    return _guard(lambda: setattr(ref, "value", a.ncols))


# -- element access -------------------------------------------------------------

def GrB_Vector_setElement(v: Vector, value, index: int) -> Info:
    return _guard(lambda: v.set_element(index, value))


def GrB_Matrix_setElement(a: Matrix, value, i: int, j: int) -> Info:
    return _guard(lambda: a.set_element(i, j, value))


def GrB_Vector_extractElement(ref: Ref, v: Vector, index: int) -> Info:
    try:
        ref.value = v.extract_element(index)
    except NoValue:
        return Info.NO_VALUE
    except Exception as exc:  # noqa: BLE001
        return info_of(exc)
    return Info.SUCCESS


def GrB_Matrix_extractElement(ref: Ref, a: Matrix, i: int, j: int) -> Info:
    try:
        ref.value = a.extract_element(i, j)
    except NoValue:
        return Info.NO_VALUE
    except Exception as exc:  # noqa: BLE001
        return info_of(exc)
    return Info.SUCCESS


def GrB_Vector_removeElement(v: Vector, index: int) -> Info:
    return _guard(lambda: v.remove_element(index))


# -- build / extractTuples ------------------------------------------------------

def GrB_Vector_build(v: Vector, indices, values, n: int, dup_op) -> Info:
    def run():
        built = Vector.from_coo(
            np.asarray(indices)[:n], np.asarray(values)[:n], v.size, dtype=v.dtype, dup_op=dup_op
        )
        v._set_data(built._indices, built._values)

    return _guard(run)


def GrB_Matrix_build(a: Matrix, rows, cols, values, n: int, dup_op) -> Info:
    def run():
        built = Matrix.from_coo(
            np.asarray(rows)[:n],
            np.asarray(cols)[:n],
            np.asarray(values)[:n],
            a.nrows,
            a.ncols,
            dtype=a.dtype,
            dup_op=dup_op,
        )
        a._indptr = built._indptr
        a._col_indices = built._col_indices
        a._values = built._values
        a._invalidate()

    return _guard(run)


def GrB_Vector_extractTuples(indices_ref: Ref, values_ref: Ref, n_ref: Ref, v: Vector) -> Info:
    def run():
        idx, vals = v.to_coo()
        indices_ref.value = idx
        values_ref.value = vals
        n_ref.value = len(idx)

    return _guard(run)


def GrB_Matrix_extractTuples(rows_ref: Ref, cols_ref: Ref, values_ref: Ref, n_ref: Ref, a: Matrix) -> Info:
    def run():
        r, c, vals = a.to_coo()
        rows_ref.value = r
        cols_ref.value = c
        values_ref.value = vals
        n_ref.value = len(r)

    return _guard(run)


# -- operations ---------------------------------------------------------------------

def GrB_Vector_apply(w, mask, accum, op, u, desc=GrB_NULL) -> Info:
    return _guard(lambda: ops.apply(w, op, u, mask=mask, accum=accum, desc=desc or NULL_DESC))


def GrB_Matrix_apply(c, mask, accum, op, a, desc=GrB_NULL) -> Info:
    return _guard(lambda: ops.apply(c, op, a, mask=mask, accum=accum, desc=desc or NULL_DESC))


def GrB_apply(out, mask, accum, op, a, desc=GrB_NULL) -> Info:
    """Polymorphic ``GrB_apply`` (the C API's ``_Generic`` dispatch)."""
    return _guard(lambda: ops.apply(out, op, a, mask=mask, accum=accum, desc=desc or NULL_DESC))


def GrB_eWiseAdd(out, mask, accum, op, a, b, desc=GrB_NULL) -> Info:
    return _guard(lambda: ops.ewise_add(out, op, a, b, mask=mask, accum=accum, desc=desc or NULL_DESC))


def GrB_eWiseMult(out, mask, accum, op, a, b, desc=GrB_NULL) -> Info:
    return _guard(lambda: ops.ewise_mult(out, op, a, b, mask=mask, accum=accum, desc=desc or NULL_DESC))


def GrB_vxm(w, mask, accum, semiring, u, a, desc=GrB_NULL) -> Info:
    return _guard(lambda: ops.vxm(w, semiring, u, a, mask=mask, accum=accum, desc=desc or NULL_DESC))


def GrB_mxv(w, mask, accum, semiring, a, u, desc=GrB_NULL) -> Info:
    return _guard(lambda: ops.mxv(w, semiring, a, u, mask=mask, accum=accum, desc=desc or NULL_DESC))


def GrB_mxm(c, mask, accum, semiring, a, b, desc=GrB_NULL) -> Info:
    return _guard(lambda: ops.mxm(c, semiring, a, b, mask=mask, accum=accum, desc=desc or NULL_DESC))


def GrB_reduce(out_ref_or_vec, mask_or_accum, monoid, obj, desc=GrB_NULL) -> Info:
    """Polymorphic reduce.

    - ``GrB_reduce(Ref, accum_or_None, monoid, vector_or_matrix)`` → scalar
    - ``GrB_reduce(Vector, mask, monoid, matrix, desc)`` → per-row vector
    """
    if isinstance(out_ref_or_vec, Ref):
        def run_scalar():
            if isinstance(obj, Vector):
                out_ref_or_vec.value = ops.reduce_vector_to_scalar(monoid, obj)
            else:
                out_ref_or_vec.value = ops.reduce_matrix_to_scalar(monoid, obj)

        return _guard(run_scalar)
    return _guard(
        lambda: ops.reduce_matrix_to_vector(
            out_ref_or_vec, monoid, obj, mask=mask_or_accum, desc=desc or NULL_DESC
        )
    )


def GrB_select(out, mask, accum, op, a, thunk, desc=GrB_NULL) -> Info:
    return _guard(lambda: ops.select(out, op, a, thunk, mask=mask, accum=accum, desc=desc or NULL_DESC))


def GrB_extract(out, mask, accum, a, indices, *args) -> Info:
    """Polymorphic extract: vector form ``(w, m, acc, u, I[, desc])`` or
    matrix form ``(c, m, acc, A, I, J[, desc])``."""
    if isinstance(a, Vector):
        desc = args[0] if args else GrB_NULL
        return _guard(
            lambda: ops.extract_subvector(out, a, indices, mask=mask, accum=accum, desc=desc or NULL_DESC)
        )
    cols = args[0] if args else None
    desc = args[1] if len(args) > 1 else GrB_NULL
    return _guard(
        lambda: ops.extract_submatrix(out, a, indices, cols, mask=mask, accum=accum, desc=desc or NULL_DESC)
    )


def GrB_assign(w, mask, accum, value_or_vec, indices, _n=None, desc=GrB_NULL) -> Info:
    """Polymorphic assign on vectors (scalar or vector payload)."""
    if isinstance(value_or_vec, Vector):
        return _guard(
            lambda: ops.assign_vector(w, value_or_vec, indices, mask=mask, accum=accum, desc=desc or NULL_DESC)
        )
    return _guard(
        lambda: ops.assign_scalar_vector(w, value_or_vec, indices, mask=mask, accum=accum, desc=desc or NULL_DESC)
    )


def GrB_transpose(c, mask, accum, a, desc=GrB_NULL) -> Info:
    return _guard(lambda: ops.transpose(c, a, mask=mask, accum=accum, desc=desc or NULL_DESC))

"""``GrB_Vector``: a typed sparse vector with a sorted index pattern.

Storage is two parallel arrays — strictly increasing ``int64`` indices and
their values — which makes membership tests, merges, and masked writes
pure-NumPy operations (see :mod:`repro.graphblas.sparseutil`).

Operation entry points (``ewise_add``, ``apply``, ``vxm``, ...) are thin
methods delegating to :mod:`repro.graphblas.operations`; the full
mask/accumulator/descriptor machinery is available on each.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .info import DimensionMismatch, InvalidIndex, InvalidValue, NoValue
from .sparseutil import INDEX_DTYPE, as_index_array, dedupe_coo, is_sorted_unique
from .types import DataType, FP64, from_dtype

__all__ = ["Vector"]


class Vector:
    """A sparse GraphBLAS vector of fixed logical ``size``.

    Create with :meth:`Vector.new`, :meth:`Vector.from_coo`,
    :meth:`Vector.from_dense`, or :meth:`Vector.full`.
    """

    __slots__ = ("size", "dtype", "_indices", "_values")

    def __init__(self, dtype: DataType, size: int):
        if size < 0:
            raise InvalidValue(f"negative vector size {size}")
        self.size = int(size)
        self.dtype = from_dtype(dtype)
        self._indices = np.empty(0, dtype=INDEX_DTYPE)
        self._values = np.empty(0, dtype=self.dtype.np_dtype)

    # -- constructors ------------------------------------------------------

    @classmethod
    def new(cls, dtype: DataType = FP64, size: int = 0) -> "Vector":
        """``GrB_Vector_new`` — an empty vector of the given domain/size."""
        return cls(dtype, size)

    @classmethod
    def from_coo(
        cls,
        indices: Iterable[int],
        values,
        size: int,
        dtype: DataType | None = None,
        dup_op=None,
    ) -> "Vector":
        """Build from (index, value) pairs (``GrB_Vector_build``).

        Duplicate indices are combined with *dup_op* (a
        :class:`~repro.graphblas.binaryop.BinaryOp`); without one the last
        duplicate wins.
        """
        idx = as_index_array(indices)
        vals = np.asarray(values)
        if vals.ndim == 0:
            vals = np.broadcast_to(vals, idx.shape).copy()
        if len(idx) != len(vals):
            raise DimensionMismatch("indices and values length differ")
        if len(idx) and (idx.min() < 0 or idx.max() >= size):
            raise InvalidIndex(f"index out of range for size {size}")
        dtype = from_dtype(dtype) if dtype is not None else from_dtype(vals.dtype)
        dup_ufunc = None
        if dup_op is not None:
            dup_ufunc = dup_op.ufunc if dup_op.ufunc is not None else np.frompyfunc(dup_op.fn, 2, 1)
        rows = np.zeros(len(idx), dtype=INDEX_DTYPE)
        _, cols, vals = dedupe_coo(rows, idx, vals, max(size, 1), dup_ufunc)
        out = cls(dtype, size)
        out._set_data(cols, dtype.cast_array(vals))
        return out

    @classmethod
    def from_dense(cls, array, missing=None, dtype: DataType | None = None) -> "Vector":
        """Build from a dense array; entries equal to *missing* are dropped.

        ``missing=None`` keeps every position (a fully dense pattern);
        ``missing=np.nan`` / a sentinel drops those.
        """
        arr = np.asarray(array)
        dtype = from_dtype(dtype) if dtype is not None else from_dtype(arr.dtype)
        out = cls(dtype, arr.shape[0])
        if missing is None:
            keep = np.ones(arr.shape[0], dtype=bool)
        elif isinstance(missing, float) and np.isnan(missing):
            keep = ~np.isnan(arr)
        else:
            keep = arr != missing
        idx = np.nonzero(keep)[0].astype(INDEX_DTYPE)
        out._set_data(idx, dtype.cast_array(arr[keep]))
        return out

    @classmethod
    def full(cls, value, size: int, dtype: DataType | None = None) -> "Vector":
        """A vector with *every* position stored and set to *value*.

        This is how the linear-algebraic SSSP represents ``t = ∞``.
        """
        dtype = from_dtype(dtype) if dtype is not None else from_dtype(np.asarray(value).dtype)
        out = cls(dtype, size)
        out._set_data(
            np.arange(size, dtype=INDEX_DTYPE),
            np.full(size, value, dtype=dtype.np_dtype),
        )
        return out

    @classmethod
    def sparse_like(cls, other: "Vector", dtype: DataType | None = None) -> "Vector":
        """Empty vector with the same size (and domain unless overridden)."""
        return cls(dtype or other.dtype, other.size)

    # -- internal data management -----------------------------------------

    def _set_data(self, indices: np.ndarray, values: np.ndarray) -> None:
        assert is_sorted_unique(indices), "internal: pattern must be sorted/unique"
        self._indices = indices
        self._values = np.ascontiguousarray(values, dtype=self.dtype.np_dtype)

    # Key-space API shared with Matrix (used by the mask write pipeline).
    def _keys(self) -> np.ndarray:
        return self._indices

    def _set_keys(self, keys: np.ndarray, values: np.ndarray) -> None:
        self._set_data(keys, values)

    def _check_same_shape(self, other, what: str) -> None:
        if not isinstance(other, Vector) or other.size != self.size:
            raise DimensionMismatch(
                f"{what} shape mismatch: expected vector of size {self.size}"
            )

    # -- basic properties ---------------------------------------------------

    @property
    def indices(self) -> np.ndarray:
        """Stored indices (sorted, read-only view)."""
        v = self._indices.view()
        v.flags.writeable = False
        return v

    @property
    def values(self) -> np.ndarray:
        """Stored values parallel to :attr:`indices` (read-only view)."""
        v = self._values.view()
        v.flags.writeable = False
        return v

    @property
    def nvals(self) -> int:
        """``GrB_Vector_nvals`` — number of stored entries."""
        return len(self._indices)

    @property
    def shape(self) -> tuple[int]:
        return (self.size,)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vector<{self.dtype.name}, size={self.size}, nvals={self.nvals}>"

    # -- element access ------------------------------------------------------

    def __contains__(self, index: int) -> bool:
        pos = np.searchsorted(self._indices, index)
        return pos < len(self._indices) and self._indices[pos] == index

    def extract_element(self, index: int):
        """``GrB_Vector_extractElement`` — raises :class:`NoValue` if absent."""
        if not 0 <= index < self.size:
            raise InvalidIndex(f"index {index} out of range [0, {self.size})")
        pos = np.searchsorted(self._indices, index)
        if pos < len(self._indices) and self._indices[pos] == index:
            return self._values[pos]
        raise NoValue(f"no stored value at index {index}")

    def get(self, index: int, default=None):
        """Like :meth:`extract_element` but returns *default* when absent."""
        try:
            return self.extract_element(index)
        except NoValue:
            return default

    def set_element(self, index: int, value) -> "Vector":
        """``GrB_Vector_setElement`` — insert or overwrite one entry."""
        if not 0 <= index < self.size:
            raise InvalidIndex(f"index {index} out of range [0, {self.size})")
        pos = int(np.searchsorted(self._indices, index))
        value = self.dtype.cast_scalar(value)
        if pos < len(self._indices) and self._indices[pos] == index:
            self._values[pos] = value
        else:
            self._indices = np.insert(self._indices, pos, index)
            self._values = np.insert(self._values, pos, value)
        return self

    def remove_element(self, index: int) -> "Vector":
        """``GrB_Vector_removeElement`` — delete one entry if present."""
        pos = int(np.searchsorted(self._indices, index))
        if pos < len(self._indices) and self._indices[pos] == index:
            self._indices = np.delete(self._indices, pos)
            self._values = np.delete(self._values, pos)
        return self

    # -- whole-object operations ---------------------------------------------

    def clear(self) -> "Vector":
        """``GrB_Vector_clear`` — drop all entries (size/domain kept)."""
        self._indices = np.empty(0, dtype=INDEX_DTYPE)
        self._values = np.empty(0, dtype=self.dtype.np_dtype)
        return self

    def dup(self) -> "Vector":
        """``GrB_Vector_dup`` — deep copy."""
        out = Vector(self.dtype, self.size)
        out._set_data(self._indices.copy(), self._values.copy())
        return out

    def to_coo(self):
        """Return ``(indices, values)`` copies (``GrB_Vector_extractTuples``)."""
        return self._indices.copy(), self._values.copy()

    def to_dense(self, fill=0) -> np.ndarray:
        """Densify with *fill* in unstored positions."""
        out = np.full(self.size, fill, dtype=self.dtype.np_dtype)
        out[self._indices] = self._values
        return out

    def to_dict(self) -> dict:
        """``{index: value}`` mapping of stored entries."""
        return {int(i): v for i, v in zip(self._indices, self._values)}

    def isequal(self, other: "Vector") -> bool:
        """Same size, same pattern, identical values (no tolerance)."""
        return (
            isinstance(other, Vector)
            and self.size == other.size
            and np.array_equal(self._indices, other._indices)
            and np.array_equal(self._values, other._values)
        )

    def isclose(self, other: "Vector", rel_tol: float = 1e-9, abs_tol: float = 0.0) -> bool:
        """Same pattern, values equal within tolerance."""
        return (
            isinstance(other, Vector)
            and self.size == other.size
            and np.array_equal(self._indices, other._indices)
            and bool(
                np.allclose(
                    self._values.astype(np.float64, copy=False),
                    other._values.astype(np.float64, copy=False),
                    rtol=rel_tol,
                    atol=abs_tol,
                    equal_nan=True,
                )
            )
        )

    def wait(self) -> "Vector":
        """``GrB_Vector_wait`` — no-op (this implementation is eager)."""
        return self

    # -- delegated operations -------------------------------------------------

    def apply(self, op, mask=None, accum=None, desc=None, out=None) -> "Vector":
        """Map stored values through a unary op; see :func:`operations.apply`."""
        from . import operations

        return operations.apply(out if out is not None else Vector(op.result_type(self.dtype), self.size), op, self, mask=mask, accum=accum, desc=desc)

    def select(self, op, thunk=None, mask=None, accum=None, desc=None, out=None) -> "Vector":
        """Keep entries passing an index-unary predicate (``GrB_select``)."""
        from . import operations

        return operations.select(out if out is not None else Vector(self.dtype, self.size), op, self, thunk, mask=mask, accum=accum, desc=desc)

    def ewise_add(self, other: "Vector", op, mask=None, accum=None, desc=None, out=None) -> "Vector":
        """Union element-wise combine (``GrB_eWiseAdd``)."""
        from . import operations

        dtype = op.result_type(self.dtype, other.dtype)
        return operations.ewise_add(out if out is not None else Vector(dtype, self.size), op, self, other, mask=mask, accum=accum, desc=desc)

    def ewise_mult(self, other: "Vector", op, mask=None, accum=None, desc=None, out=None) -> "Vector":
        """Intersection element-wise combine (``GrB_eWiseMult``)."""
        from . import operations

        dtype = op.result_type(self.dtype, other.dtype)
        return operations.ewise_mult(out if out is not None else Vector(dtype, self.size), op, self, other, mask=mask, accum=accum, desc=desc)

    def vxm(self, matrix, semiring, mask=None, accum=None, desc=None, out=None) -> "Vector":
        """Row-vector × matrix over a semiring (``GrB_vxm``)."""
        from . import operations

        dtype = semiring.result_type(self.dtype, matrix.dtype)
        return operations.vxm(out if out is not None else Vector(dtype, matrix.ncols), semiring, self, matrix, mask=mask, accum=accum, desc=desc)

    def reduce(self, monoid, dtype: DataType | None = None):
        """Reduce all stored values to a scalar (``GrB_Vector_reduce``)."""
        from . import operations

        return operations.reduce_vector_to_scalar(monoid, self, dtype=dtype)

    def extract(self, indices, mask=None, accum=None, desc=None, out=None) -> "Vector":
        """Subvector extraction (``GrB_extract``)."""
        from . import operations

        return operations.extract_subvector(out, self, indices, mask=mask, accum=accum, desc=desc)

    def assign_scalar(self, value, indices=None, mask=None, accum=None, desc=None) -> "Vector":
        """Assign one scalar across positions (``GrB_assign``)."""
        from . import operations

        return operations.assign_scalar_vector(self, value, indices, mask=mask, accum=accum, desc=desc)

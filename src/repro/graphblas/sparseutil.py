"""Vectorized kernels on sorted sparse index sets.

Every GraphBLAS object in this package stores its pattern as a sorted,
duplicate-free ``int64`` index array plus a parallel value array.  The
operations here — membership, union/intersection/difference merges, grouped
reductions, segment gathers — are the building blocks shared by the
element-wise ops, masking, matrix multiply, and assign/extract.

All kernels are NumPy-vectorized (no per-element Python loops), following
the scientific-Python optimization guidance: the only O(nnz) passes are
ufunc loops, ``searchsorted``, sorts, and ``reduceat`` group reductions.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_index_array",
    "is_sorted_unique",
    "membership",
    "intersect",
    "union_merge",
    "difference",
    "group_reduce",
    "segment_gather",
    "counting_sort_pairs",
    "dedupe_coo",
]

INDEX_DTYPE = np.int64


def as_index_array(indices) -> np.ndarray:
    """Coerce *indices* to a contiguous ``int64`` array (no copy if possible)."""
    arr = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return arr


def is_sorted_unique(indices: np.ndarray) -> bool:
    """True when *indices* is strictly increasing (sorted and duplicate-free)."""
    if len(indices) < 2:
        return True
    return bool(np.all(indices[1:] > indices[:-1]))


def membership(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Boolean mask over *needles*: which are present in sorted *haystack*."""
    if len(haystack) == 0 or len(needles) == 0:
        return np.zeros(len(needles), dtype=bool)
    pos = np.searchsorted(haystack, needles)
    pos_clipped = np.minimum(pos, len(haystack) - 1)
    return haystack[pos_clipped] == needles


def intersect(a_idx: np.ndarray, b_idx: np.ndarray):
    """Intersection of two sorted unique index arrays.

    Returns ``(common, a_pos, b_pos)`` where ``common`` is the sorted
    intersection and ``a_pos``/``b_pos`` are the positions of those indices
    inside *a_idx*/*b_idx*.
    """
    common, a_pos, b_pos = np.intersect1d(
        a_idx, b_idx, assume_unique=True, return_indices=True
    )
    return common, a_pos, b_pos


def union_merge(a_idx: np.ndarray, b_idx: np.ndarray):
    """Union of two sorted unique index arrays with provenance.

    Returns ``(merged, in_a, in_b, a_pos, b_pos)``:

    - ``merged``: sorted union.
    - ``in_a`` / ``in_b``: boolean masks over ``merged`` marking which
      union slots come from *a_idx* / *b_idx* (both True on overlap).
    - ``a_pos``: for every union slot where ``in_a``, the position in
      *a_idx* (undefined elsewhere, stored as 0); same for ``b_pos``.
    """
    merged = np.union1d(a_idx, b_idx)
    in_a = membership(a_idx, merged)
    in_b = membership(b_idx, merged)
    a_pos = np.zeros(len(merged), dtype=INDEX_DTYPE)
    b_pos = np.zeros(len(merged), dtype=INDEX_DTYPE)
    if len(a_idx):
        a_pos[in_a] = np.searchsorted(a_idx, merged[in_a])
    if len(b_idx):
        b_pos[in_b] = np.searchsorted(b_idx, merged[in_b])
    return merged, in_a, in_b, a_pos, b_pos


def difference(a_idx: np.ndarray, b_idx: np.ndarray):
    """Indices of *a_idx* not present in *b_idx*; returns (kept_values, kept_pos)."""
    keep = ~membership(b_idx, a_idx)
    return a_idx[keep], np.nonzero(keep)[0]


def group_reduce(keys: np.ndarray, values: np.ndarray, ufunc: np.ufunc):
    """Reduce *values* grouped by *keys* with a NumPy ufunc.

    *keys* need not be sorted.  Returns ``(unique_keys, reduced)`` with
    ``unique_keys`` sorted ascending.  This is the scatter-reduce at the
    heart of ``vxm``/``mxv``/``mxm`` over arbitrary monoids: sort by key,
    then one ``ufunc.reduceat`` per group boundary.
    """
    if len(keys) == 0:
        return keys[:0].copy(), values[:0].copy()
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    sv = values[order]
    boundaries = np.empty(len(sk), dtype=bool)
    boundaries[0] = True
    np.not_equal(sk[1:], sk[:-1], out=boundaries[1:])
    starts = np.nonzero(boundaries)[0]
    reduced = ufunc.reduceat(sv, starts)
    return sk[starts], reduced


def segment_gather(indptr: np.ndarray, rows: np.ndarray):
    """Flatten the CSR segments of *rows* into one index stream.

    Given a CSR ``indptr`` and a set of row ids, returns
    ``(flat, seg_lengths)`` where ``flat`` indexes into the CSR data arrays
    covering exactly the entries of the requested rows (rows concatenated in
    the order given), and ``seg_lengths[k]`` is the entry count of
    ``rows[k]``.  This is the standard vectorized "concatenated ranges"
    construction (no Python loop over rows).
    """
    starts = indptr[rows]
    ends = indptr[rows + 1]
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=INDEX_DTYPE), lengths
    # flat[j] = starts[k] + (j - offset[k]) for j in segment k
    offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
    flat = np.arange(total, dtype=INDEX_DTYPE) - offsets + np.repeat(starts, lengths)
    return flat, lengths


def counting_sort_pairs(keys: np.ndarray, n_keys: int, *arrays):
    """Stable counting sort of parallel arrays by small-integer *keys*.

    Used to build CSR/CSC structures in O(nnz + n).  Returns
    ``(counts, sorted_arrays...)`` where ``counts`` is the histogram of
    *keys* (length *n_keys*) — its cumulative sum is the ``indptr``.
    """
    counts = np.bincount(keys, minlength=n_keys).astype(INDEX_DTYPE)
    order = np.argsort(keys, kind="stable")
    return (counts,) + tuple(arr[order] for arr in arrays)


def dedupe_coo(rows: np.ndarray, cols: np.ndarray, values: np.ndarray, ncols: int, dup_ufunc: np.ufunc | None):
    """Sort COO triples by (row, col) and combine duplicates.

    ``dup_ufunc=None`` keeps the *last* duplicate (GraphBLAS build semantics
    without a dup operator are an error; matrix import uses SECOND-like
    behaviour).  Returns deduplicated ``(rows, cols, values)`` sorted
    row-major.
    """
    if len(rows) == 0:
        return rows.copy(), cols.copy(), values.copy()
    keys = rows * np.int64(ncols) + cols
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    sv = values[order]
    boundaries = np.empty(len(sk), dtype=bool)
    boundaries[0] = True
    np.not_equal(sk[1:], sk[:-1], out=boundaries[1:])
    starts = np.nonzero(boundaries)[0]
    uk = sk[starts]
    if dup_ufunc is None:
        # last occurrence wins: positions are (next_start - 1)
        ends = np.empty_like(starts)
        ends[:-1] = starts[1:] - 1
        ends[-1] = len(sk) - 1
        vals = sv[ends]
    else:
        vals = dup_ufunc.reduceat(sv, starts)
    out_rows = (uk // ncols).astype(INDEX_DTYPE)
    out_cols = (uk % ncols).astype(INDEX_DTYPE)
    return out_rows, out_cols, vals

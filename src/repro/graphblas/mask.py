"""The GraphBLAS output-write pipeline: accumulate → mask → replace.

Every GraphBLAS operation ends by writing its computed pattern/values ``T``
into the output ``C`` under the control of an optional accumulator, an
optional mask ``M``, and the descriptor's ``REPLACE``/``COMP``/``STRUCTURE``
flags.  The spec defines this as:

1. ``Z = C ⊙ T`` when an accumulator ``⊙`` is given (union of patterns,
   accumulator applied where both exist), else ``Z = T``.
2. Within the mask's true set ``m``: ``C`` becomes exactly ``Z ∩ m``
   (entries of ``C`` inside ``m`` but absent from ``Z`` are *deleted*).
   Outside ``m``: ``C`` is kept, unless ``REPLACE`` clears it.

This module implements that pipeline once, generically over flattened
``int64`` *keys* (a vector's indices, or a matrix's ``row*ncols + col``),
so vectors and matrices share one battle-tested code path.
"""

from __future__ import annotations

import numpy as np

from .binaryop import BinaryOp
from .sparseutil import membership, union_merge
from .types import DataType

__all__ = ["effective_mask_keys", "accum_merge", "masked_write", "finalize_write"]


def effective_mask_keys(mask, structural: bool) -> np.ndarray:
    """Sorted keys of the mask entries that count as *true*.

    ``mask`` is any object exposing ``_keys()`` and ``values`` (Vector or
    Matrix).  A structural mask counts every stored entry; a value mask
    counts entries whose value casts to True.
    """
    keys = mask._keys()
    if structural:
        return keys
    truthy = mask.values.astype(bool, copy=False)
    return keys[truthy]


def accum_merge(
    c_keys: np.ndarray,
    c_vals: np.ndarray,
    t_keys: np.ndarray,
    t_vals: np.ndarray,
    accum: BinaryOp | None,
    out_dtype: DataType,
):
    """Step 1 of the pipeline: ``Z = C ⊙ T`` (or ``Z = T`` without accum)."""
    if accum is None:
        return t_keys, out_dtype.cast_array(t_vals)
    merged, in_c, in_t, c_pos, t_pos = union_merge(c_keys, t_keys)
    z_vals = np.empty(len(merged), dtype=out_dtype.np_dtype)
    only_c = in_c & ~in_t
    only_t = in_t & ~in_c
    both = in_c & in_t
    if only_c.any():
        z_vals[only_c] = c_vals[c_pos[only_c]]
    if only_t.any():
        z_vals[only_t] = out_dtype.cast_array(np.asarray(t_vals)[t_pos[only_t]])
    if both.any():
        combined = accum(c_vals[c_pos[both]], np.asarray(t_vals)[t_pos[both]])
        z_vals[both] = out_dtype.cast_array(combined)
    return merged, z_vals


def masked_write(
    c_keys: np.ndarray,
    c_vals: np.ndarray,
    z_keys: np.ndarray,
    z_vals: np.ndarray,
    mask_true_keys: np.ndarray | None,
    complement: bool,
    replace: bool,
    out_dtype: DataType,
):
    """Step 2 of the pipeline: merge ``Z`` into ``C`` under the mask."""
    if mask_true_keys is None:
        # No mask: C's pattern is replaced by Z entirely.
        return z_keys, out_dtype.cast_array(z_vals)

    def in_m(keys: np.ndarray) -> np.ndarray:
        memb = membership(mask_true_keys, keys)
        return ~memb if complement else memb

    z_keep = in_m(z_keys)
    new_from_z_keys = z_keys[z_keep]
    new_from_z_vals = np.asarray(z_vals)[z_keep]

    if replace:
        return new_from_z_keys, out_dtype.cast_array(new_from_z_vals)

    c_keep = ~in_m(c_keys)
    kept_c_keys = c_keys[c_keep]
    kept_c_vals = c_vals[c_keep]

    # The two partitions are disjoint (inside-mask vs outside-mask), so a
    # sort of the concatenation restores key order without a dedupe pass.
    merged_keys = np.concatenate([kept_c_keys, new_from_z_keys])
    merged_vals = np.concatenate(
        [
            out_dtype.cast_array(kept_c_vals),
            out_dtype.cast_array(new_from_z_vals),
        ]
    )
    order = np.argsort(merged_keys, kind="stable")
    return merged_keys[order], merged_vals[order]


def finalize_write(out, t_keys: np.ndarray, t_vals: np.ndarray, mask, accum, desc) -> None:
    """Run the full pipeline and store the result into *out* in place.

    *out* is a Vector or Matrix (anything with ``_keys()``, ``values``,
    ``dtype`` and ``_set_keys(keys, values)``).
    """
    from .descriptor import NULL_DESC

    desc = desc or NULL_DESC
    if mask is not None:
        out._check_same_shape(mask, "mask")
    c_keys = out._keys()
    c_vals = out.values
    z_keys, z_vals = accum_merge(c_keys, c_vals, t_keys, t_vals, accum, out.dtype)
    mask_keys = (
        effective_mask_keys(mask, desc.mask_structure) if mask is not None else None
    )
    new_keys, new_vals = masked_write(
        c_keys,
        c_vals,
        z_keys,
        z_vals,
        mask_keys,
        desc.mask_complement,
        desc.replace,
        out.dtype,
    )
    out._set_keys(new_keys, new_vals)

"""A complete GraphBLAS implementation in pure Python/NumPy.

This package is the substrate the paper's implementations link against
(SuiteSparse:GraphBLAS for the C version, GBTL for the C++ version),
rebuilt from scratch on NumPy-vectorized sparse kernels:

- **Objects**: :class:`Vector`, :class:`Matrix`, :class:`Scalar`, typed by
  the predefined GraphBLAS domains (:mod:`~repro.graphblas.types`).
- **Operators**: unary/binary/index-unary ops, monoids, semirings — all the
  predefined ones plus user-defined constructors (the paper's ``delta_*``
  threshold functions are :func:`~repro.graphblas.unaryop.threshold_leq`
  et al.).
- **Operations**: ``apply``, ``select``, ``eWiseAdd``/``eWiseMult``,
  ``vxm``/``mxv``/``mxm``, reductions, ``extract``/``assign``,
  ``transpose``, ``kronecker`` — each with the spec's full
  mask/accumulator/descriptor write pipeline.
- **Facades**: :mod:`~repro.graphblas.capi` exposes C-style ``GrB_*``
  functions returning :class:`~repro.graphblas.info.Info` codes so the
  paper's Fig. 2 listing transliterates one-to-one;
  :mod:`~repro.graphblas.gbtl` mirrors the GBTL C++ template API.
"""

from . import binaryop, capi, descriptor, gbtl, indexunaryop, io, monoid, operations, semiring, types, unaryop
from .binaryop import (
    ANY,
    DIV,
    EQ,
    FIRST,
    GE,
    GT,
    LAND,
    LE,
    LOR,
    LT,
    LXOR,
    MAX,
    MIN,
    MINUS,
    NE,
    PAIR,
    PLUS,
    RDIV,
    RMINUS,
    SECOND,
    TIMES,
    BinaryOp,
)
from .descriptor import (
    COMPLEMENT,
    NULL_DESC,
    REPLACE,
    REPLACE_COMPLEMENT,
    REPLACE_STRUCTURE,
    STRUCTURE,
    TRANSPOSE0,
    TRANSPOSE1,
    Descriptor,
)
from .indexunaryop import IndexUnaryOp, value_in_range
from .info import GraphBLASError, Info, NoValue
from .matrix import Matrix
from .monoid import (
    ANY_MONOID,
    EQ_MONOID,
    LAND_MONOID,
    LOR_MONOID,
    LXOR_MONOID,
    MAX_MONOID,
    MIN_MONOID,
    PLUS_MONOID,
    TIMES_MONOID,
    Monoid,
)
from .operations import (
    apply,
    assign_scalar_matrix,
    assign_scalar_vector,
    assign_vector,
    ewise_add,
    ewise_mult,
    extract_submatrix,
    extract_subvector,
    kronecker,
    mxm,
    mxv,
    reduce_matrix_to_scalar,
    reduce_matrix_to_vector,
    reduce_vector_to_scalar,
    select,
    transpose,
    vxm,
)
from .scalar import Scalar
from .semiring import (
    ANY_PAIR,
    ANY_SECOND,
    LOR_LAND,
    MAX_PLUS,
    MIN_FIRST,
    MIN_MIN,
    MIN_PLUS,
    MIN_SECOND,
    MIN_TIMES,
    PLUS_MIN,
    PLUS_PAIR,
    PLUS_TIMES,
    Semiring,
)
from .types import (
    ALL_TYPES,
    BOOL,
    FP32,
    FP64,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    DataType,
)
from .unaryop import (
    ABS,
    AINV,
    IDENTITY,
    LNOT,
    MINV,
    ONE,
    UnaryOp,
    range_filter,
    threshold_geq,
    threshold_gt,
    threshold_leq,
    threshold_lt,
)
from .vector import Vector

__all__ = [
    # objects
    "Vector",
    "Matrix",
    "Scalar",
    # operator algebra
    "UnaryOp",
    "BinaryOp",
    "IndexUnaryOp",
    "Monoid",
    "Semiring",
    "DataType",
    "Descriptor",
    # predefined types
    "ALL_TYPES",
    "BOOL",
    "INT8", "INT16", "INT32", "INT64",
    "UINT8", "UINT16", "UINT32", "UINT64",
    "FP32", "FP64",
    # predefined unary ops
    "IDENTITY", "AINV", "MINV", "LNOT", "ONE", "ABS",
    "range_filter", "threshold_geq", "threshold_gt", "threshold_leq", "threshold_lt",
    # predefined binary ops
    "FIRST", "SECOND", "MIN", "MAX", "PLUS", "MINUS", "RMINUS",
    "TIMES", "DIV", "RDIV", "PAIR", "ANY",
    "EQ", "NE", "GT", "LT", "GE", "LE", "LOR", "LAND", "LXOR",
    # predefined index-unary ops
    "value_in_range",
    # predefined monoids
    "MIN_MONOID", "MAX_MONOID", "PLUS_MONOID", "TIMES_MONOID", "ANY_MONOID",
    "LOR_MONOID", "LAND_MONOID", "LXOR_MONOID", "EQ_MONOID",
    # predefined semirings
    "MIN_PLUS", "MIN_TIMES", "MIN_FIRST", "MIN_SECOND", "MIN_MIN",
    "MAX_PLUS", "PLUS_TIMES", "PLUS_MIN", "PLUS_PAIR",
    "ANY_PAIR", "ANY_SECOND", "LOR_LAND",
    # predefined descriptors
    "NULL_DESC", "REPLACE", "STRUCTURE", "COMPLEMENT",
    "REPLACE_STRUCTURE", "REPLACE_COMPLEMENT", "TRANSPOSE0", "TRANSPOSE1",
    # operations
    "apply",
    "select",
    "ewise_add",
    "ewise_mult",
    "vxm",
    "mxv",
    "mxm",
    "reduce_vector_to_scalar",
    "reduce_matrix_to_vector",
    "reduce_matrix_to_scalar",
    "extract_subvector",
    "extract_submatrix",
    "assign_scalar_matrix",
    "assign_scalar_vector",
    "assign_vector",
    "transpose",
    "kronecker",
    # errors
    "Info",
    "GraphBLASError",
    "NoValue",
    # submodules
    "types",
    "unaryop",
    "binaryop",
    "indexunaryop",
    "monoid",
    "semiring",
    "descriptor",
    "operations",
    "capi",
    "gbtl",
    "io",
]

"""GraphBLAS index-unary operators (``GrB_IndexUnaryOp``).

Index-unary operators see each stored entry's *value and position*
``f(value, row, col, thunk)`` and power ``GrB_select`` (structural and
value filters) and positional ``GrB_apply`` variants.  For vectors the
column argument is zero.

These subsume the paper's filter constructions: ``(A > Δ)`` is
``VALUEGT`` with thunk Δ, the bucket filter ``iΔ ≤ t < (i+1)Δ`` is
:func:`value_in_range`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .types import BOOL, INT64, DataType

__all__ = [
    "IndexUnaryOp",
    "ROWINDEX",
    "COLINDEX",
    "DIAGINDEX",
    "TRIL",
    "TRIU",
    "DIAG",
    "OFFDIAG",
    "VALUEEQ",
    "VALUENE",
    "VALUEGT",
    "VALUEGE",
    "VALUELT",
    "VALUELE",
    "COLLE",
    "COLGT",
    "ROWLE",
    "ROWGT",
    "value_in_range",
]


@dataclass(frozen=True)
class IndexUnaryOp:
    """A named operator ``z = f(x, i, j, thunk)`` over stored entries.

    ``fn`` receives parallel arrays of values, row indices, and column
    indices, plus the scalar *thunk*, and returns an array of results.
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray, np.ndarray, object], np.ndarray]
    out_type: DataType | None = BOOL

    def __call__(self, values: np.ndarray, rows: np.ndarray, cols: np.ndarray, thunk) -> np.ndarray:
        out = self.fn(values, rows, cols, thunk)
        if self.out_type is not None:
            out = np.asarray(out, dtype=self.out_type.np_dtype)
        return np.asarray(out)

    def result_type(self, in_type: DataType) -> DataType:
        return self.out_type if self.out_type is not None else in_type

    @staticmethod
    def define(fn, name: str = "udf", out_type: DataType | None = BOOL) -> "IndexUnaryOp":
        """Create a user-defined index-unary op."""
        return IndexUnaryOp(name=name, fn=fn, out_type=out_type)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"IndexUnaryOp<{self.name}>"


ROWINDEX = IndexUnaryOp("ROWINDEX", lambda v, i, j, t: i + t, out_type=INT64)
COLINDEX = IndexUnaryOp("COLINDEX", lambda v, i, j, t: j + t, out_type=INT64)
DIAGINDEX = IndexUnaryOp("DIAGINDEX", lambda v, i, j, t: j - i + t, out_type=INT64)

TRIL = IndexUnaryOp("TRIL", lambda v, i, j, t: j <= i + t)
TRIU = IndexUnaryOp("TRIU", lambda v, i, j, t: j >= i + t)
DIAG = IndexUnaryOp("DIAG", lambda v, i, j, t: j == i + t)
OFFDIAG = IndexUnaryOp("OFFDIAG", lambda v, i, j, t: j != i + t)

COLLE = IndexUnaryOp("COLLE", lambda v, i, j, t: j <= t)
COLGT = IndexUnaryOp("COLGT", lambda v, i, j, t: j > t)
ROWLE = IndexUnaryOp("ROWLE", lambda v, i, j, t: i <= t)
ROWGT = IndexUnaryOp("ROWGT", lambda v, i, j, t: i > t)

VALUEEQ = IndexUnaryOp("VALUEEQ", lambda v, i, j, t: v == t)
VALUENE = IndexUnaryOp("VALUENE", lambda v, i, j, t: v != t)
VALUEGT = IndexUnaryOp("VALUEGT", lambda v, i, j, t: v > t)
VALUEGE = IndexUnaryOp("VALUEGE", lambda v, i, j, t: v >= t)
VALUELT = IndexUnaryOp("VALUELT", lambda v, i, j, t: v < t)
VALUELE = IndexUnaryOp("VALUELE", lambda v, i, j, t: v <= t)


def value_in_range(lo: float, hi: float) -> IndexUnaryOp:
    """Half-open range test ``lo <= value < hi`` (bucket membership filter)."""
    return IndexUnaryOp(
        f"VALUEINRANGE[{lo},{hi})",
        lambda v, i, j, t: (v >= lo) & (v < hi),
    )

"""GraphBLAS unary operators (``GrB_UnaryOp``).

A unary operator maps every stored value of a collection through a scalar
function; here the function acts on whole NumPy value arrays at once.  The
paper's Fig. 2 relies on *user-defined* unary ops that capture a scalar
threshold (``delta_leq``, ``delta_gt``, ``delta_irange``, ``delta_igeq``);
:meth:`UnaryOp.define` plus the factory helpers at the bottom of this module
reproduce those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .types import BOOL, DataType

__all__ = [
    "UnaryOp",
    "IDENTITY",
    "AINV",
    "MINV",
    "LNOT",
    "ABS",
    "ONE",
    "threshold_leq",
    "threshold_gt",
    "threshold_geq",
    "threshold_lt",
    "range_filter",
]


@dataclass(frozen=True)
class UnaryOp:
    """A named unary operator ``z = f(x)`` acting on value arrays.

    Attributes
    ----------
    name:
        Diagnostic name.
    fn:
        Vectorized callable mapping an ndarray of inputs to outputs.
    out_type:
        Fixed output :class:`~repro.graphblas.types.DataType`, or ``None``
        to keep the input domain.
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    out_type: DataType | None = None

    def __call__(self, values: np.ndarray) -> np.ndarray:
        out = self.fn(values)
        if self.out_type is not None:
            out = np.asarray(out, dtype=self.out_type.np_dtype)
        return np.asarray(out)

    def result_type(self, in_type: DataType) -> DataType:
        """Domain of the result given the input domain."""
        return self.out_type if self.out_type is not None else in_type

    @staticmethod
    def define(fn: Callable[[np.ndarray], np.ndarray], name: str = "udf", out_type: DataType | None = None) -> "UnaryOp":
        """Create a user-defined unary op from a vectorized callable."""
        return UnaryOp(name=name, fn=fn, out_type=out_type)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"UnaryOp<{self.name}>"


def _safe_minv(x: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", over="ignore"):
        return 1.0 / x


IDENTITY = UnaryOp("IDENTITY", lambda x: x)
AINV = UnaryOp("AINV", np.negative)
MINV = UnaryOp("MINV", _safe_minv)
LNOT = UnaryOp("LNOT", np.logical_not, out_type=BOOL)
ABS = UnaryOp("ABS", np.abs)
ONE = UnaryOp("ONE", np.ones_like)


# -- user-defined threshold factories (the paper's delta_* operators) -------

def threshold_leq(delta: float, name: str | None = None) -> UnaryOp:
    """``x <= delta`` — the paper's ``delta_leq`` (light-edge test)."""
    return UnaryOp(name or f"LEQ[{delta}]", lambda x: x <= delta, out_type=BOOL)


def threshold_gt(delta: float, name: str | None = None) -> UnaryOp:
    """``x > delta`` — the paper's ``delta_gt`` (heavy-edge test)."""
    return UnaryOp(name or f"GT[{delta}]", lambda x: x > delta, out_type=BOOL)


def threshold_geq(bound: float, name: str | None = None) -> UnaryOp:
    """``x >= bound`` — the paper's ``delta_igeq`` (outer-loop test)."""
    return UnaryOp(name or f"GEQ[{bound}]", lambda x: x >= bound, out_type=BOOL)


def threshold_lt(bound: float, name: str | None = None) -> UnaryOp:
    """``x < bound``."""
    return UnaryOp(name or f"LT[{bound}]", lambda x: x < bound, out_type=BOOL)


def range_filter(lo: float, hi: float, name: str | None = None) -> UnaryOp:
    """``lo <= x < hi`` — the paper's ``delta_irange`` (bucket membership)."""
    return UnaryOp(
        name or f"RANGE[{lo},{hi})",
        lambda x: (x >= lo) & (x < hi),
        out_type=BOOL,
    )

"""GraphBLAS descriptors (``GrB_Descriptor``).

Descriptors tweak how an operation treats its output, mask, and inputs:

- ``OUTP = REPLACE`` — clear the output before writing results through the
  mask (the paper's ``clear_desc``; without it, stale entries outside the
  mask survive).
- ``MASK = COMP`` — use the complement of the mask.
- ``MASK = STRUCTURE`` — mask by stored pattern rather than by value.
- ``INP0/INP1 = TRAN`` — operate on the transpose of the first/second input.

Immutable value objects; combine flags with the provided constructors or
:meth:`Descriptor.replacing` etc.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

__all__ = [
    "Descriptor",
    "NULL_DESC",
    "REPLACE",
    "COMPLEMENT",
    "STRUCTURE",
    "TRANSPOSE0",
    "TRANSPOSE1",
    "REPLACE_COMPLEMENT",
    "REPLACE_STRUCTURE",
]


@dataclass(frozen=True)
class Descriptor:
    """Operation modifier flags (all default off)."""

    replace: bool = False
    mask_complement: bool = False
    mask_structure: bool = False
    transpose0: bool = False
    transpose1: bool = False

    def replacing(self) -> "Descriptor":
        """Copy with ``OUTP=REPLACE`` set."""
        return _dc_replace(self, replace=True)

    def complementing(self) -> "Descriptor":
        """Copy with ``MASK=COMP`` set."""
        return _dc_replace(self, mask_complement=True)

    def structural(self) -> "Descriptor":
        """Copy with ``MASK=STRUCTURE`` set."""
        return _dc_replace(self, mask_structure=True)

    def transposing(self, which: int) -> "Descriptor":
        """Copy with ``INP0=TRAN`` (``which=0``) or ``INP1=TRAN`` (``which=1``)."""
        if which == 0:
            return _dc_replace(self, transpose0=True)
        if which == 1:
            return _dc_replace(self, transpose1=True)
        raise ValueError("which must be 0 or 1")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        flags = [
            name
            for name, on in (
                ("REPLACE", self.replace),
                ("COMP", self.mask_complement),
                ("STRUCTURE", self.mask_structure),
                ("TRAN0", self.transpose0),
                ("TRAN1", self.transpose1),
            )
            if on
        ]
        return f"Descriptor<{'|'.join(flags) or 'NULL'}>"


NULL_DESC = Descriptor()
REPLACE = Descriptor(replace=True)
COMPLEMENT = Descriptor(mask_complement=True)
STRUCTURE = Descriptor(mask_structure=True)
TRANSPOSE0 = Descriptor(transpose0=True)
TRANSPOSE1 = Descriptor(transpose1=True)
REPLACE_COMPLEMENT = Descriptor(replace=True, mask_complement=True)
REPLACE_STRUCTURE = Descriptor(replace=True, mask_structure=True)

"""GBTL-flavoured facade: the C++ GraphBLAS Template Library API surface.

The paper's second implementation targets GBTL (Zalewski, Zhang, Lumsdaine,
McMillan), whose API is function templates in namespace ``grb`` taking
functor objects (``grb::MinSelect2ndSemiring<double>()``) and throwing
exceptions on error.  This module mirrors that flavour so the GBTL version
of the SSSP reads like its C++ counterpart:

- free functions ``gbtl.vxm(w, mask, accum, op, u, A, replace_flag)``;
- functor-style operator classes instantiated per element type
  (``MinPlusSemiring(FP64)``);
- errors raised as exceptions (C++ ``throw``), unlike the C facade.
"""

from __future__ import annotations

from . import operations as ops
from .binaryop import BinaryOp, MIN as _MIN, PLUS as _PLUS, TIMES as _TIMES
from .descriptor import NULL_DESC, REPLACE
from .matrix import Matrix
from .monoid import MIN_MONOID, PLUS_MONOID, Monoid
from .semiring import MIN_PLUS, MIN_SECOND, PLUS_TIMES, Semiring
from .types import FP64, DataType
from .vector import Vector

__all__ = [
    "NoMask",
    "NoAccumulate",
    "Plus",
    "Min",
    "Times",
    "PlusMonoid",
    "MinMonoid",
    "ArithmeticSemiring",
    "MinPlusSemiring",
    "MinSelect2ndSemiring",
    "vxm",
    "mxv",
    "mxm",
    "eWiseAdd",
    "eWiseMult",
    "apply",
    "assign",
    "extract",
    "reduce",
    "transpose",
]


class NoMask:
    """``grb::NoMask`` — placeholder for an absent mask."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "grb::NoMask()"


class NoAccumulate:
    """``grb::NoAccumulate`` — placeholder for an absent accumulator."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "grb::NoAccumulate()"


def _mask_of(mask):
    return None if mask is None or isinstance(mask, NoMask) else mask


def _accum_of(accum):
    return None if accum is None or isinstance(accum, NoAccumulate) else accum


def _desc_of(replace_flag: bool):
    return REPLACE if replace_flag else NULL_DESC


# -- functor-style operator factories (C++ template instantiations) ---------

def Plus(_dtype: DataType = FP64) -> BinaryOp:
    """``grb::Plus<T>()``."""
    return _PLUS


def Min(_dtype: DataType = FP64) -> BinaryOp:
    """``grb::Min<T>()``."""
    return _MIN


def Times(_dtype: DataType = FP64) -> BinaryOp:
    """``grb::Times<T>()``."""
    return _TIMES


def PlusMonoid(_dtype: DataType = FP64) -> Monoid:
    """``grb::PlusMonoid<T>()``."""
    return PLUS_MONOID


def MinMonoid(_dtype: DataType = FP64) -> Monoid:
    """``grb::MinMonoid<T>()``."""
    return MIN_MONOID


def ArithmeticSemiring(_dtype: DataType = FP64) -> Semiring:
    """``grb::ArithmeticSemiring<T>()`` — (+, ×)."""
    return PLUS_TIMES


def MinPlusSemiring(_dtype: DataType = FP64) -> Semiring:
    """``grb::MinPlusSemiring<T>()`` — (min, +), the SSSP semiring."""
    return MIN_PLUS


def MinSelect2ndSemiring(_dtype: DataType = FP64) -> Semiring:
    """``grb::MinSelect2ndSemiring<T>()`` — used by GBTL's sssp.hpp."""
    return MIN_SECOND


# -- operations (GBTL signature order; throw on error) -----------------------

def vxm(w: Vector, mask, accum, op: Semiring, u: Vector, A: Matrix, replace_flag: bool = False) -> Vector:
    """``grb::vxm(w, mask, accum, semiring, u, A, replace)``."""
    return ops.vxm(w, op, u, A, mask=_mask_of(mask), accum=_accum_of(accum), desc=_desc_of(replace_flag))


def mxv(w: Vector, mask, accum, op: Semiring, A: Matrix, u: Vector, replace_flag: bool = False) -> Vector:
    """``grb::mxv(w, mask, accum, semiring, A, u, replace)``."""
    return ops.mxv(w, op, A, u, mask=_mask_of(mask), accum=_accum_of(accum), desc=_desc_of(replace_flag))


def mxm(C: Matrix, mask, accum, op: Semiring, A: Matrix, B: Matrix, replace_flag: bool = False) -> Matrix:
    """``grb::mxm(C, mask, accum, semiring, A, B, replace)``."""
    return ops.mxm(C, op, A, B, mask=_mask_of(mask), accum=_accum_of(accum), desc=_desc_of(replace_flag))


def eWiseAdd(w, mask, accum, op, u, v, replace_flag: bool = False):
    """``grb::eWiseAdd(w, mask, accum, op, u, v, replace)``."""
    return ops.ewise_add(w, op, u, v, mask=_mask_of(mask), accum=_accum_of(accum), desc=_desc_of(replace_flag))


def eWiseMult(w, mask, accum, op, u, v, replace_flag: bool = False):
    """``grb::eWiseMult(w, mask, accum, op, u, v, replace)``."""
    return ops.ewise_mult(w, op, u, v, mask=_mask_of(mask), accum=_accum_of(accum), desc=_desc_of(replace_flag))


def apply(w, mask, accum, op, u, replace_flag: bool = False):
    """``grb::apply(w, mask, accum, unary_op, u, replace)``."""
    return ops.apply(w, op, u, mask=_mask_of(mask), accum=_accum_of(accum), desc=_desc_of(replace_flag))


def assign(w, mask, accum, value, indices, replace_flag: bool = False):
    """``grb::assign(w, mask, accum, val, indices, replace)`` (scalar form)."""
    if isinstance(value, Vector):
        return ops.assign_vector(w, value, indices, mask=_mask_of(mask), accum=_accum_of(accum), desc=_desc_of(replace_flag))
    return ops.assign_scalar_vector(w, value, indices, mask=_mask_of(mask), accum=_accum_of(accum), desc=_desc_of(replace_flag))


def extract(w, mask, accum, u, indices, replace_flag: bool = False):
    """``grb::extract(w, mask, accum, u, indices, replace)`` (vector form)."""
    return ops.extract_subvector(w, u, indices, mask=_mask_of(mask), accum=_accum_of(accum), desc=_desc_of(replace_flag))


def reduce(monoid: Monoid, u) -> object:
    """``grb::reduce`` to scalar."""
    if isinstance(u, Vector):
        return ops.reduce_vector_to_scalar(monoid, u)
    return ops.reduce_matrix_to_scalar(monoid, u)


def transpose(C: Matrix, mask, accum, A: Matrix, replace_flag: bool = False) -> Matrix:
    """``grb::transpose(C, mask, accum, A, replace)``."""
    return ops.transpose(C, A, mask=_mask_of(mask), accum=_accum_of(accum), desc=_desc_of(replace_flag))

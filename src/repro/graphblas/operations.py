"""The GraphBLAS operation set.

Every public function here follows the C API calling convention
``op(out, [modifiers...], inputs..., mask=, accum=, desc=)``: the computed
pattern/values ``T`` is produced by a vectorized kernel, then written into
*out* through the accumulate→mask→replace pipeline
(:func:`repro.graphblas.mask.finalize_write`).  All functions return *out*.

Implemented operations (matching what the paper's implementations and our
extension algorithms need — which is the full working set of the C API 1.x):

========================  ====================================================
``apply``                 unary-op map over stored values (vector & matrix)
``select``                index-unary filtering (vector & matrix)
``ewise_add``             union element-wise combine (vector & matrix)
``ewise_mult``            intersection element-wise combine (vector & matrix)
``vxm`` / ``mxv``         vector-matrix / matrix-vector over a semiring
``mxm``                   matrix-matrix over a semiring (masked, chunked)
``reduce_*``              monoid reductions (to vector / to scalar)
``extract_*``             subvector / submatrix extraction
``assign_*``              scalar / vector / matrix-scalar assign
``transpose``             explicit transpose with write pipeline
``kronecker``             Kronecker product over a binary op
========================  ====================================================
"""

from __future__ import annotations

import numpy as np

from .binaryop import BinaryOp
from .descriptor import NULL_DESC, Descriptor
from .info import DimensionMismatch, DomainMismatch, InvalidIndex, InvalidValue
from .mask import accum_merge, effective_mask_keys, finalize_write, masked_write
from .matrix import Matrix
from .monoid import Monoid
from .semiring import Semiring
from .sparseutil import (
    INDEX_DTYPE,
    as_index_array,
    group_reduce,
    is_sorted_unique,
    membership,
    segment_gather,
    union_merge,
)
from .types import DataType, from_dtype
from .unaryop import UnaryOp
from .vector import Vector

__all__ = [
    "apply",
    "select",
    "ewise_add",
    "ewise_mult",
    "vxm",
    "mxv",
    "mxm",
    "reduce_vector_to_scalar",
    "reduce_matrix_to_vector",
    "reduce_matrix_to_scalar",
    "extract_subvector",
    "extract_submatrix",
    "assign_scalar_vector",
    "assign_scalar_matrix",
    "assign_vector",
    "transpose",
    "kronecker",
]

#: expansion budget per mxm chunk (number of semiring multiplies in flight)
MXM_CHUNK_BUDGET = 1 << 22


def _resolve_input(a, desc: Descriptor, which: int):
    """Apply the descriptor's INPx=TRAN flag to a matrix input."""
    if isinstance(a, Matrix):
        if which == 0 and desc.transpose0:
            return a.transpose()
        if which == 1 and desc.transpose1:
            return a.transpose()
    return a


def _check_out_shape(out, template) -> None:
    if isinstance(template, Vector):
        if not isinstance(out, Vector) or out.size != template.size:
            raise DimensionMismatch(
                f"output must be a vector of size {template.size}"
            )
    else:
        if (
            not isinstance(out, Matrix)
            or out.nrows != template.nrows
            or out.ncols != template.ncols
        ):
            raise DimensionMismatch(
                f"output must be a {template.nrows}x{template.ncols} matrix"
            )


# ---------------------------------------------------------------------------
# apply / select
# ---------------------------------------------------------------------------

def apply(out, op: UnaryOp, a, mask=None, accum=None, desc: Descriptor | None = None):
    """``GrB_apply``: map every stored value of *a* through unary *op*.

    The pattern of the computed result equals the pattern of *a*; the write
    pipeline then merges it into *out*.  The paper's filters are built from
    two of these calls: one computing a Boolean predicate, a second using
    that predicate as *mask* over an ``IDENTITY`` apply so that falsified
    entries are **not stored** (§V.B).
    """
    desc = desc or NULL_DESC
    a = _resolve_input(a, desc, 0)
    _check_out_shape(out, a)
    t_keys = a._keys()
    t_vals = op(a.values)
    finalize_write(out, t_keys, t_vals, mask, accum, desc)
    return out


def select(out, op, a, thunk=None, mask=None, accum=None, desc: Descriptor | None = None):
    """``GrB_select``: keep entries of *a* passing ``op(value, i, j, thunk)``."""
    desc = desc or NULL_DESC
    a = _resolve_input(a, desc, 0)
    _check_out_shape(out, a)
    if isinstance(a, Matrix):
        rows = a.row_ids_expanded()
        cols = a.col_indices
    else:
        rows = a.indices
        cols = np.zeros(a.nvals, dtype=INDEX_DTYPE)
    keep = np.asarray(op(a.values, rows, cols, thunk), dtype=bool)
    t_keys = a._keys()[keep]
    t_vals = a.values[keep]
    finalize_write(out, t_keys, t_vals, mask, accum, desc)
    return out


# ---------------------------------------------------------------------------
# element-wise
# ---------------------------------------------------------------------------

def _ewise_add_kernel(op: BinaryOp, a, b, out_dtype: DataType):
    merged, in_a, in_b, a_pos, b_pos = union_merge(a._keys(), b._keys())
    vals = np.empty(len(merged), dtype=out_dtype.np_dtype)
    only_a = in_a & ~in_b
    only_b = in_b & ~in_a
    both = in_a & in_b
    # Union semantics (the §V.B pitfall lives here): where only one operand
    # has an entry, that value passes through *unchanged* — the operator is
    # NOT applied against an identity.
    if only_a.any():
        vals[only_a] = out_dtype.cast_array(a.values[a_pos[only_a]])
    if only_b.any():
        vals[only_b] = out_dtype.cast_array(b.values[b_pos[only_b]])
    if both.any():
        vals[both] = out_dtype.cast_array(
            op(a.values[a_pos[both]], b.values[b_pos[both]])
        )
    return merged, vals


def ewise_add(out, op, a, b, mask=None, accum=None, desc: Descriptor | None = None):
    """``GrB_eWiseAdd``: element-wise combine over the **union** of patterns.

    *op* may be a :class:`BinaryOp`, :class:`Monoid`, or :class:`Semiring`
    (the spec accepts all three; monoid/semiring contribute their binary op).
    """
    desc = desc or NULL_DESC
    a = _resolve_input(a, desc, 0)
    b = _resolve_input(b, desc, 1)
    a._check_same_shape(b, "eWiseAdd operand")
    _check_out_shape(out, a)
    binop = _as_binaryop(op)
    out_dtype = binop.result_type(a.dtype, b.dtype)
    t_keys, t_vals = _ewise_add_kernel(binop, a, b, out_dtype)
    finalize_write(out, t_keys, t_vals, mask, accum, desc)
    return out


def ewise_mult(out, op, a, b, mask=None, accum=None, desc: Descriptor | None = None):
    """``GrB_eWiseMult``: element-wise combine over the **intersection**."""
    desc = desc or NULL_DESC
    a = _resolve_input(a, desc, 0)
    b = _resolve_input(b, desc, 1)
    a._check_same_shape(b, "eWiseMult operand")
    _check_out_shape(out, a)
    binop = _as_binaryop(op)
    out_dtype = binop.result_type(a.dtype, b.dtype)
    a_keys = a._keys()
    b_keys = b._keys()
    common, a_pos, b_pos = np.intersect1d(
        a_keys, b_keys, assume_unique=True, return_indices=True
    )
    t_vals = out_dtype.cast_array(binop(a.values[a_pos], b.values[b_pos]))
    finalize_write(out, common, t_vals, mask, accum, desc)
    return out


def _as_binaryop(op) -> BinaryOp:
    if isinstance(op, BinaryOp):
        return op
    if isinstance(op, Monoid):
        return op.binaryop
    if isinstance(op, Semiring):
        return op.add.binaryop
    raise DomainMismatch(f"expected BinaryOp/Monoid/Semiring, got {type(op).__name__}")


# ---------------------------------------------------------------------------
# semiring products
# ---------------------------------------------------------------------------

def _vxm_kernel(semiring: Semiring, u: Vector, A: Matrix):
    """Push kernel: ``t[j] = ⊕_i  u[i] ⊗ A[i, j]`` over stored entries."""
    rows = u.indices
    flat, lengths = segment_gather(A._indptr, rows)
    if len(flat) == 0:
        return np.empty(0, dtype=INDEX_DTYPE), np.empty(0)
    left = np.repeat(u.values, lengths)
    right = A._values[flat]
    mults = semiring.multiply(left, right)
    cols = A._col_indices[flat]
    return group_reduce(cols, mults, semiring.add.ufunc)


def vxm(out, semiring: Semiring, u: Vector, A: Matrix, mask=None, accum=None, desc: Descriptor | None = None):
    """``GrB_vxm``: ``out = u' ⊕.⊗ A`` — the paper's relaxation kernel.

    With the ``(min, +)`` semiring and ``u = t ∘ tBi`` this computes
    ``tReq = A_L' (min.+) (t ∘ tBi)``: one simultaneous relaxation of all
    light edges out of the current bucket.
    """
    desc = desc or NULL_DESC
    A = _resolve_input(A, desc, 1)
    if u.size != A.nrows:
        raise DimensionMismatch(
            f"vxm: vector size {u.size} != matrix nrows {A.nrows}"
        )
    if not isinstance(out, Vector) or out.size != A.ncols:
        raise DimensionMismatch(f"vxm: output must be a vector of size {A.ncols}")
    t_keys, t_vals = _vxm_kernel(semiring, u, A)
    finalize_write(out, t_keys, t_vals, mask, accum, desc)
    return out


def _mxv_kernel(semiring: Semiring, A: Matrix, u: Vector):
    """Pull kernel: ``t[i] = ⊕_j  A[i, j] ⊗ u[j]`` over stored entries."""
    if A.nvals == 0 or u.nvals == 0:
        return np.empty(0, dtype=INDEX_DTYPE), np.empty(0)
    cols = A._col_indices
    present = membership(u.indices, cols)
    if not present.any():
        return np.empty(0, dtype=INDEX_DTYPE), np.empty(0)
    pos_in_u = np.searchsorted(u.indices, cols[present])
    mults = semiring.multiply(A._values[present], u.values[pos_in_u])
    rows = A.row_ids_expanded()[present]
    return group_reduce(rows, mults, semiring.add.ufunc)


def mxv(out, semiring: Semiring, A: Matrix, u: Vector, mask=None, accum=None, desc: Descriptor | None = None):
    """``GrB_mxv``: ``out = A ⊕.⊗ u``."""
    desc = desc or NULL_DESC
    A = _resolve_input(A, desc, 0)
    if u.size != A.ncols:
        raise DimensionMismatch(
            f"mxv: vector size {u.size} != matrix ncols {A.ncols}"
        )
    if not isinstance(out, Vector) or out.size != A.nrows:
        raise DimensionMismatch(f"mxv: output must be a vector of size {A.nrows}")
    t_keys, t_vals = _mxv_kernel(semiring, A, u)
    finalize_write(out, t_keys, t_vals, mask, accum, desc)
    return out


def _merge_partial(acc_keys, acc_vals, keys, vals, ufunc):
    """Combine partial (key, value) group results under the add monoid."""
    if acc_keys is None:
        return keys, vals
    all_keys = np.concatenate([acc_keys, keys])
    all_vals = np.concatenate([acc_vals, vals])
    return group_reduce(all_keys, all_vals, ufunc)


def _mxm_kernel(semiring: Semiring, A: Matrix, B: Matrix, mask_keys, complement: bool):
    """Chunked expansion mxm: flop-bounded memory, early mask filtering."""
    a_rows = A.row_ids_expanded()
    a_cols = A._col_indices
    a_vals = A._values
    if len(a_cols) == 0 or B.nvals == 0:
        return np.empty(0, dtype=INDEX_DTYPE), np.empty(0)
    ncols_b = np.int64(max(B.ncols, 1))
    b_deg = B.row_degrees()
    expansion = b_deg[a_cols]
    cum = np.cumsum(expansion)
    total = int(cum[-1])
    acc_keys = None
    acc_vals = None
    start = 0
    add_ufunc = semiring.add.ufunc
    while start < len(a_cols):
        base = cum[start - 1] if start > 0 else 0
        stop = int(np.searchsorted(cum, base + MXM_CHUNK_BUDGET, side="left")) + 1
        stop = min(max(stop, start + 1), len(a_cols))
        sl = slice(start, stop)
        flat, lengths = segment_gather(B._indptr, a_cols[sl])
        if len(flat):
            out_rows = np.repeat(a_rows[sl], lengths)
            out_cols = B._col_indices[flat]
            keys = out_rows * ncols_b + out_cols
            mults = semiring.multiply(np.repeat(a_vals[sl], lengths), B._values[flat])
            if mask_keys is not None:
                keep = membership(mask_keys, keys)
                if complement:
                    keep = ~keep
                keys = keys[keep]
                mults = mults[keep]
            if len(keys):
                pk, pv = group_reduce(keys, mults, add_ufunc)
                acc_keys, acc_vals = _merge_partial(acc_keys, acc_vals, pk, pv, add_ufunc)
        start = stop
    if acc_keys is None:
        return np.empty(0, dtype=INDEX_DTYPE), np.empty(0)
    return acc_keys, acc_vals


def mxm(out, semiring: Semiring, A: Matrix, B: Matrix, mask=None, accum=None, desc: Descriptor | None = None):
    """``GrB_mxm``: ``out = A ⊕.⊗ B`` with optional structural mask push-down.

    The masked form is the k-truss / triangle-counting workhorse
    (``S = AᵀA ∘ A`` in §II.C): with a mask the kernel filters candidate
    products per chunk *before* reduction — for a regular mask keeping only
    in-mask keys, for a complemented mask dropping them — the standard
    masked-mxm optimization.  The batch SSSP engine leans on this: its
    frontier-matrix relaxation wave is one masked ``mxm`` per phase.
    """
    desc = desc or NULL_DESC
    A = _resolve_input(A, desc, 0)
    B = _resolve_input(B, desc, 1)
    if A.ncols != B.nrows:
        raise DimensionMismatch(
            f"mxm: inner dimensions differ ({A.ncols} vs {B.nrows})"
        )
    if not isinstance(out, Matrix) or out.nrows != A.nrows or out.ncols != B.ncols:
        raise DimensionMismatch(
            f"mxm: output must be a {A.nrows}x{B.ncols} matrix"
        )
    mask_keys = None
    if mask is not None:
        out._check_same_shape(mask, "mask")
        mask_keys = effective_mask_keys(mask, desc.mask_structure)
    t_keys, t_vals = _mxm_kernel(
        semiring, A, B, mask_keys, desc.mask_complement
    )
    finalize_write(out, t_keys, t_vals, mask, accum, desc)
    return out


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def reduce_vector_to_scalar(monoid: Monoid, u: Vector, dtype: DataType | None = None):
    """``GrB_Vector_reduce``: fold all stored values through *monoid*."""
    dtype = from_dtype(dtype) if dtype is not None else u.dtype
    return monoid.reduce_all(u.values, dtype)


def reduce_matrix_to_scalar(monoid: Monoid, A: Matrix, dtype: DataType | None = None):
    """``GrB_Matrix_reduce`` to scalar."""
    dtype = from_dtype(dtype) if dtype is not None else A.dtype
    return monoid.reduce_all(A.values, dtype)


def reduce_matrix_to_vector(out, monoid: Monoid, A: Matrix, mask=None, accum=None, desc: Descriptor | None = None):
    """``GrB_Matrix_reduce_Monoid``: per-row fold (per-column with INP0 TRAN)."""
    desc = desc or NULL_DESC
    A = _resolve_input(A, desc, 0)
    if out is None:
        out = Vector(A.dtype, A.nrows)
    if not isinstance(out, Vector) or out.size != A.nrows:
        raise DimensionMismatch(f"reduce: output must be a vector of size {A.nrows}")
    rows = A.row_ids_expanded()
    t_keys, t_vals = group_reduce(rows, A._values, monoid.ufunc)
    finalize_write(out, t_keys, t_vals, mask, accum, desc)
    return out


# ---------------------------------------------------------------------------
# extract / assign
# ---------------------------------------------------------------------------

def _resolve_index_list(indices, extent: int) -> np.ndarray:
    """Normalize an index argument (None/ALL, slice, or array-like)."""
    if indices is None:
        return np.arange(extent, dtype=INDEX_DTYPE)
    if isinstance(indices, slice):
        return np.arange(*indices.indices(extent), dtype=INDEX_DTYPE)
    arr = as_index_array(indices)
    if len(arr) and (arr.min() < 0 or arr.max() >= extent):
        raise InvalidIndex(f"index out of range [0, {extent})")
    return arr


def extract_subvector(out, u: Vector, indices, mask=None, accum=None, desc: Descriptor | None = None):
    """``GrB_Vector_extract``: ``out[k] = u[indices[k]]`` (duplicates allowed)."""
    desc = desc or NULL_DESC
    idx = _resolve_index_list(indices, u.size)
    if out is None:
        out = Vector(u.dtype, len(idx))
    if not isinstance(out, Vector) or out.size != len(idx):
        raise DimensionMismatch(f"extract: output must be a vector of size {len(idx)}")
    present = membership(u.indices, idx)
    pos_in_u = np.searchsorted(u.indices, idx[present]) if present.any() else np.empty(0, dtype=INDEX_DTYPE)
    t_keys = np.nonzero(present)[0].astype(INDEX_DTYPE)
    t_vals = u.values[pos_in_u]
    finalize_write(out, t_keys, t_vals, mask, accum, desc)
    return out


def extract_submatrix(out, A: Matrix, rows, cols, mask=None, accum=None, desc: Descriptor | None = None):
    """``GrB_Matrix_extract``: ``out[k, l] = A[rows[k], cols[l]]``.

    Row duplicates are supported (segments repeat); column lists must be
    duplicate-free.
    """
    desc = desc or NULL_DESC
    A = _resolve_input(A, desc, 0)
    ridx = _resolve_index_list(rows, A.nrows)
    cidx = _resolve_index_list(cols, A.ncols)
    sorted_cols = np.sort(cidx)
    if not is_sorted_unique(sorted_cols):
        raise InvalidValue("extract_submatrix requires duplicate-free columns")
    if out is None:
        out = Matrix(A.dtype, len(ridx), len(cidx))
    if not isinstance(out, Matrix) or out.nrows != len(ridx) or out.ncols != len(cidx):
        raise DimensionMismatch(
            f"extract: output must be a {len(ridx)}x{len(cidx)} matrix"
        )
    # position of each selected column in the *output* column space
    col_slot = np.empty(len(cidx), dtype=INDEX_DTYPE)
    col_slot[np.argsort(cidx, kind="stable")] = np.arange(len(cidx), dtype=INDEX_DTYPE)
    # gather the requested rows, then filter entries to the requested columns
    flat, lengths = segment_gather(A._indptr, ridx)
    out_rows = np.repeat(np.arange(len(ridx), dtype=INDEX_DTYPE), lengths)
    entry_cols = A._col_indices[flat]
    keep = membership(sorted_cols, entry_cols)
    out_rows = out_rows[keep]
    kept_cols = entry_cols[keep]
    slot_of = col_slot[np.searchsorted(sorted_cols, kept_cols)]
    vals = A._values[flat][keep]
    keys = out_rows * np.int64(max(len(cidx), 1)) + slot_of
    order = np.argsort(keys, kind="stable")
    finalize_write(out, keys[order], vals[order], mask, accum, desc)
    return out


def assign_scalar_vector(w: Vector, value, indices=None, mask=None, accum=None, desc: Descriptor | None = None):
    """``GrB_Vector_assign_Scalar``: broadcast one scalar over positions."""
    desc = desc or NULL_DESC
    idx = _resolve_index_list(indices, w.size)
    idx = np.unique(idx)
    t_vals = np.full(len(idx), value, dtype=w.dtype.np_dtype)
    finalize_write(w, idx, t_vals, mask, accum, desc)
    return w


def assign_vector(w: Vector, u: Vector, indices=None, mask=None, accum=None, desc: Descriptor | None = None):
    """``GrB_Vector_assign``: ``w[indices[k]] = u[k]``.

    *indices* must be duplicate-free (spec requirement).
    """
    desc = desc or NULL_DESC
    idx = _resolve_index_list(indices, w.size)
    if len(idx) != u.size:
        raise DimensionMismatch(
            f"assign: index list length {len(idx)} != input size {u.size}"
        )
    if len(np.unique(idx)) != len(idx):
        raise InvalidValue("assign requires duplicate-free indices")
    t_keys_unsorted = idx[u.indices]
    order = np.argsort(t_keys_unsorted, kind="stable")
    finalize_write(w, t_keys_unsorted[order], u.values[order], mask, accum, desc)
    return w


def assign_scalar_matrix(C: Matrix, value, rows=None, cols=None, mask=None, accum=None, desc: Descriptor | None = None):
    """``GrB_Matrix_assign_Scalar``: broadcast one scalar over ``rows × cols``.

    The assigned pattern is the cross product of the two index lists
    (``None`` means ALL, per the spec).  Unlike the whole-output
    operations, assign only *touches the region*: entries of *C* outside
    ``rows × cols`` always survive, while the accumulate→mask→replace
    pipeline runs on the region's entries alone.  The batch SSSP engine
    seeds its K×n tentative-distance matrix with this — one
    ``t[k, s_k] = 0`` per source row.
    """
    desc = desc or NULL_DESC
    if mask is not None:
        C._check_same_shape(mask, "mask")
    ridx = np.unique(_resolve_index_list(rows, C.nrows))
    cidx = np.unique(_resolve_index_list(cols, C.ncols))
    t_keys = (
        np.repeat(ridx, len(cidx)) * np.int64(max(C.ncols, 1))
        + np.tile(cidx, len(ridx))
    )
    t_vals = np.full(len(t_keys), value, dtype=C.dtype.np_dtype)
    c_keys = C._keys()
    c_vals = C.values
    in_region = membership(t_keys, c_keys)
    z_keys, z_vals = accum_merge(
        c_keys[in_region], c_vals[in_region], t_keys, t_vals, accum, C.dtype
    )
    mask_keys = (
        effective_mask_keys(mask, desc.mask_structure) if mask is not None else None
    )
    new_keys, new_vals = masked_write(
        c_keys[in_region],
        c_vals[in_region],
        z_keys,
        z_vals,
        mask_keys,
        desc.mask_complement,
        desc.replace,
        C.dtype,
    )
    merged_keys = np.concatenate([c_keys[~in_region], new_keys])
    merged_vals = np.concatenate([c_vals[~in_region], C.dtype.cast_array(new_vals)])
    order = np.argsort(merged_keys, kind="stable")
    C._set_keys(merged_keys[order], merged_vals[order])
    return C


# ---------------------------------------------------------------------------
# transpose / kronecker
# ---------------------------------------------------------------------------

def transpose(out, A: Matrix, mask=None, accum=None, desc: Descriptor | None = None):
    """``GrB_transpose`` with the full write pipeline.

    (With ``INP0=TRAN`` in *desc* this degenerates to a masked copy of *A*,
    exactly as the spec notes.)
    """
    desc = desc or NULL_DESC
    A_eff = A.transpose() if not desc.transpose0 else A
    if not isinstance(out, Matrix) or out.nrows != A_eff.nrows or out.ncols != A_eff.ncols:
        raise DimensionMismatch(
            f"transpose: output must be a {A_eff.nrows}x{A_eff.ncols} matrix"
        )
    finalize_write(out, A_eff._keys(), A_eff.values, mask, accum, desc)
    return out


def kronecker(out, op: BinaryOp, A: Matrix, B: Matrix):
    """``GrB_kronecker``: ``out[i·m+p, k·n+q] = op(A[i,k], B[p,q])``."""
    binop = _as_binaryop(op)
    nrows = A.nrows * B.nrows
    ncols = A.ncols * B.ncols
    if out is None:
        out = Matrix(binop.result_type(A.dtype, B.dtype), nrows, ncols)
    if not isinstance(out, Matrix) or out.nrows != nrows or out.ncols != ncols:
        raise DimensionMismatch(f"kronecker: output must be {nrows}x{ncols}")
    a_rows = A.row_ids_expanded()
    a_cols = A._col_indices
    b_rows = B.row_ids_expanded()
    b_cols = B._col_indices
    na, nb = A.nvals, B.nvals
    rows = np.repeat(a_rows, nb) * np.int64(B.nrows) + np.tile(b_rows, na)
    cols = np.repeat(a_cols, nb) * np.int64(B.ncols) + np.tile(b_cols, na)
    vals = binop(np.repeat(A._values, nb), np.tile(B._values, na))
    keys = rows * np.int64(max(ncols, 1)) + cols
    order = np.argsort(keys, kind="stable")
    finalize_write(out, keys[order], np.asarray(vals)[order], None, None, NULL_DESC)
    return out

"""``GrB_Scalar``: a typed scalar that may be empty.

GraphBLAS scalars carry presence information (an empty scalar behaves like
an absent entry).  They serve as select thunks and as the result of
reductions in the C API; the Pythonic layer mostly returns NumPy scalars,
but the C facade uses this class to round-trip ``GrB_Scalar_*`` calls.
"""

from __future__ import annotations

from .info import NoValue
from .types import DataType, FP64, from_dtype

__all__ = ["Scalar"]


class Scalar:
    """A possibly-empty typed scalar."""

    __slots__ = ("dtype", "_value", "_present")

    def __init__(self, dtype: DataType = FP64, value=None):
        self.dtype = from_dtype(dtype)
        self._value = None
        self._present = False
        if value is not None:
            self.set(value)

    @classmethod
    def new(cls, dtype: DataType = FP64) -> "Scalar":
        """``GrB_Scalar_new`` — an empty scalar."""
        return cls(dtype)

    @property
    def nvals(self) -> int:
        """1 when a value is stored, else 0."""
        return int(self._present)

    @property
    def is_empty(self) -> bool:
        return not self._present

    def set(self, value) -> "Scalar":
        """``GrB_Scalar_setElement``."""
        self._value = self.dtype.cast_scalar(value)
        self._present = True
        return self

    def extract(self):
        """``GrB_Scalar_extractElement`` — raises :class:`NoValue` if empty."""
        if not self._present:
            raise NoValue("scalar is empty")
        return self._value

    def get(self, default=None):
        """Value or *default* when empty."""
        return self._value if self._present else default

    def clear(self) -> "Scalar":
        """``GrB_Scalar_clear``."""
        self._value = None
        self._present = False
        return self

    def dup(self) -> "Scalar":
        out = Scalar(self.dtype)
        if self._present:
            out.set(self._value)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = repr(self._value) if self._present else "empty"
        return f"Scalar<{self.dtype.name}, {body}>"

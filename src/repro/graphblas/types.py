"""The GraphBLAS predefined type system mapped onto NumPy dtypes.

GraphBLAS objects (vectors, matrices, scalars) carry a domain type.  The
spec's predefined types are exposed here as :class:`DataType` singletons
(``BOOL``, ``INT8`` ... ``UINT64``, ``FP32``, ``FP64``) together with the
promotion rules used when an operation receives operands of different
domains (the spec leaves mixed-domain behaviour to casting; we follow
NumPy's promotion, which is what SuiteSparse does in practice).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .info import DomainMismatch

__all__ = [
    "DataType",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FP32",
    "FP64",
    "ALL_TYPES",
    "INTEGER_TYPES",
    "FLOAT_TYPES",
    "from_dtype",
    "promote",
    "default_identity_for",
]


@dataclass(frozen=True)
class DataType:
    """A GraphBLAS domain type.

    Attributes
    ----------
    name:
        The spec name (``"FP64"``, ``"INT32"``, ...).
    np_dtype:
        The NumPy dtype used for storage.
    is_bool / is_integer / is_float:
        Classification flags used by operator validity checks.
    """

    name: str
    np_dtype: np.dtype = field(compare=False)
    is_bool: bool = False
    is_integer: bool = False
    is_float: bool = False

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GrB_{self.name}"

    @property
    def zero(self):
        """The additive identity literal in this domain."""
        return self.np_dtype.type(0)

    @property
    def one(self):
        """The multiplicative identity literal in this domain."""
        return self.np_dtype.type(1)

    def cast_array(self, values: np.ndarray) -> np.ndarray:
        """Cast *values* into this domain's storage dtype (no copy if same)."""
        return np.asarray(values, dtype=self.np_dtype)

    def cast_scalar(self, value):
        """Cast a Python/NumPy scalar into this domain."""
        return self.np_dtype.type(value)


BOOL = DataType("BOOL", np.dtype(np.bool_), is_bool=True)
INT8 = DataType("INT8", np.dtype(np.int8), is_integer=True)
INT16 = DataType("INT16", np.dtype(np.int16), is_integer=True)
INT32 = DataType("INT32", np.dtype(np.int32), is_integer=True)
INT64 = DataType("INT64", np.dtype(np.int64), is_integer=True)
UINT8 = DataType("UINT8", np.dtype(np.uint8), is_integer=True)
UINT16 = DataType("UINT16", np.dtype(np.uint16), is_integer=True)
UINT32 = DataType("UINT32", np.dtype(np.uint32), is_integer=True)
UINT64 = DataType("UINT64", np.dtype(np.uint64), is_integer=True)
FP32 = DataType("FP32", np.dtype(np.float32), is_float=True)
FP64 = DataType("FP64", np.dtype(np.float64), is_float=True)

ALL_TYPES = (
    BOOL,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    FP32,
    FP64,
)
INTEGER_TYPES = tuple(t for t in ALL_TYPES if t.is_integer)
FLOAT_TYPES = (FP32, FP64)

_BY_NP_DTYPE = {t.np_dtype: t for t in ALL_TYPES}
_BY_NAME = {t.name: t for t in ALL_TYPES}


def from_dtype(dtype) -> DataType:
    """Look up the :class:`DataType` for a NumPy dtype (or dtype-like).

    Raises
    ------
    DomainMismatch
        If the dtype has no GraphBLAS counterpart (e.g. complex, object).
    """
    if isinstance(dtype, DataType):
        return dtype
    if isinstance(dtype, str) and dtype in _BY_NAME:
        return _BY_NAME[dtype]
    np_dtype = np.dtype(dtype)
    try:
        return _BY_NP_DTYPE[np_dtype]
    except KeyError:
        raise DomainMismatch(f"no GraphBLAS type for dtype {np_dtype!r}") from None


def promote(a: DataType, b: DataType) -> DataType:
    """Return the promoted domain for mixed-type operands (NumPy rules)."""
    if a is b:
        return a
    return from_dtype(np.promote_types(a.np_dtype, b.np_dtype))


def default_identity_for(dtype: DataType, kind: str):
    """Identity element used by reductions when a monoid needs one.

    ``kind`` is one of ``"min"``, ``"max"``, ``"plus"``, ``"times"``,
    ``"lor"``, ``"land"``, ``"lxor"``, ``"eq"``, ``"any"``, ``"bor"``,
    ``"band"``.  ``min``/``max`` identities are +inf/-inf in floating
    domains and the integer extrema otherwise, exactly as the predefined
    GraphBLAS monoids specify.
    """
    np_dtype = dtype.np_dtype
    if kind == "min":
        if dtype.is_float:
            return np_dtype.type(np.inf)
        if dtype.is_bool:
            return np.bool_(True)
        return np.iinfo(np_dtype).max
    if kind == "max":
        if dtype.is_float:
            return np_dtype.type(-np.inf)
        if dtype.is_bool:
            return np.bool_(False)
        return np.iinfo(np_dtype).min
    if kind == "plus" or kind == "lor" or kind == "lxor" or kind == "bor":
        return np_dtype.type(0) if not dtype.is_bool else np.bool_(False)
    if kind == "times" or kind == "land" or kind == "eq":
        return np_dtype.type(1) if not dtype.is_bool else np.bool_(True)
    if kind == "band":
        if dtype.is_integer:
            return np_dtype.type(~np_dtype.type(0))
        return np_dtype.type(1)
    if kind == "any":
        # ANY has no true identity; GraphBLAS uses an arbitrary stored value.
        return np_dtype.type(0)
    raise ValueError(f"unknown monoid identity kind {kind!r}")

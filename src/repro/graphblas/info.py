"""GraphBLAS return codes and the exceptions they map to.

The GraphBLAS C API communicates success/failure through ``GrB_Info`` return
values.  The Pythonic layer of this package raises exceptions instead, but the
C-flavoured facade (:mod:`repro.graphblas.capi`) returns these codes exactly
like the listings in the paper (Fig. 2) expect.  Keeping both layers in sync
is the job of :func:`info_of` / :func:`raise_for_info`.
"""

from __future__ import annotations

import enum


class Info(enum.IntEnum):
    """``GrB_Info`` return codes from the GraphBLAS C API specification.

    Values below 100 are API errors (caller mistakes); values of 100 and
    above are execution errors (runtime failures).
    """

    SUCCESS = 0
    NO_VALUE = 1

    # -- API errors -------------------------------------------------------
    UNINITIALIZED_OBJECT = 2
    INVALID_OBJECT = 3
    NULL_POINTER = 4
    INVALID_VALUE = 5
    INVALID_INDEX = 6
    DOMAIN_MISMATCH = 7
    DIMENSION_MISMATCH = 8
    OUTPUT_NOT_EMPTY = 9
    NOT_IMPLEMENTED = 10

    # -- execution errors -------------------------------------------------
    PANIC = 101
    OUT_OF_MEMORY = 102
    INSUFFICIENT_SPACE = 103
    INDEX_OUT_OF_BOUNDS = 104
    EMPTY_OBJECT = 105


class GraphBLASError(Exception):
    """Base class for all errors raised by :mod:`repro.graphblas`."""

    #: the :class:`Info` code this exception corresponds to
    info: Info = Info.PANIC


class NoValue(GraphBLASError):
    """Raised when extracting an element that is not stored (``GrB_NO_VALUE``)."""

    info = Info.NO_VALUE


class UninitializedObject(GraphBLASError):
    info = Info.UNINITIALIZED_OBJECT


class InvalidObject(GraphBLASError):
    info = Info.INVALID_OBJECT


class NullPointer(GraphBLASError):
    info = Info.NULL_POINTER


class InvalidValue(GraphBLASError):
    info = Info.INVALID_VALUE


class InvalidIndex(GraphBLASError):
    info = Info.INVALID_INDEX


class DomainMismatch(GraphBLASError):
    info = Info.DOMAIN_MISMATCH


class DimensionMismatch(GraphBLASError):
    info = Info.DIMENSION_MISMATCH


class OutputNotEmpty(GraphBLASError):
    info = Info.OUTPUT_NOT_EMPTY


class NotImplementedInSpec(GraphBLASError):
    info = Info.NOT_IMPLEMENTED


class Panic(GraphBLASError):
    info = Info.PANIC


class IndexOutOfBounds(GraphBLASError):
    info = Info.INDEX_OUT_OF_BOUNDS


class EmptyObject(GraphBLASError):
    info = Info.EMPTY_OBJECT


#: exception class for each Info code (SUCCESS maps to None)
_EXC_FOR_INFO: dict[Info, type[GraphBLASError] | None] = {
    Info.SUCCESS: None,
    Info.NO_VALUE: NoValue,
    Info.UNINITIALIZED_OBJECT: UninitializedObject,
    Info.INVALID_OBJECT: InvalidObject,
    Info.NULL_POINTER: NullPointer,
    Info.INVALID_VALUE: InvalidValue,
    Info.INVALID_INDEX: InvalidIndex,
    Info.DOMAIN_MISMATCH: DomainMismatch,
    Info.DIMENSION_MISMATCH: DimensionMismatch,
    Info.OUTPUT_NOT_EMPTY: OutputNotEmpty,
    Info.NOT_IMPLEMENTED: NotImplementedInSpec,
    Info.PANIC: Panic,
    Info.INDEX_OUT_OF_BOUNDS: IndexOutOfBounds,
    Info.EMPTY_OBJECT: EmptyObject,
}


def info_of(exc: BaseException) -> Info:
    """Return the :class:`Info` code corresponding to an exception."""
    if isinstance(exc, GraphBLASError):
        return exc.info
    if isinstance(exc, MemoryError):
        return Info.OUT_OF_MEMORY
    if isinstance(exc, IndexError):
        return Info.INDEX_OUT_OF_BOUNDS
    return Info.PANIC


def raise_for_info(info: Info, message: str = "") -> None:
    """Raise the exception matching *info*, or return for ``SUCCESS``.

    ``NO_VALUE`` is informational in the spec but callers of this helper
    treat it as exceptional (element extraction); hence it raises.
    """
    exc = _EXC_FOR_INFO.get(Info(info))
    if exc is not None:
        raise exc(message or Info(info).name)

"""Series generators for every figure in the paper's evaluation.

- :func:`fig3_series` — Fig. 3: sequential runtime (ms) of the unfused
  GraphBLAS implementation vs the fused implementation, per graph,
  ascending node count; headline = average fused speedup (paper: 3.7×).
- :func:`fig4_series` — Fig. 4: task-parallel speedup over the fused
  sequential implementation at 2 and 4 threads (paper: 1.44× / 1.5×
  averages), real threads or simulated schedule.
- :func:`sec6c_profile` — §VI.C: share of sequential runtime spent in the
  A_L/A_H matrix filtering (paper: 35–40%).

Each returns plain dict-rows ready for
:func:`repro.bench.reporting.format_table`; ``render_*`` wraps them in
the figure-shaped ASCII output the CLI prints.
"""

from __future__ import annotations

from ..sssp.fused import fused_delta_stepping
from ..sssp.graphblas_sssp import graphblas_delta_stepping
from ..sssp.parallel import parallel_delta_stepping
from .reporting import ascii_bar_chart, format_table, geometric_mean
from .timing import time_callable
from .workloads import Workload, suite_workloads

__all__ = [
    "fig3_series",
    "fig4_series",
    "sec6c_profile",
    "render_fig3",
    "render_fig4",
    "render_sec6c",
]


def fig3_series(
    workloads: list[Workload] | None = None,
    repeats: int = 3,
    verify: bool = True,
) -> list[dict]:
    """Unfused vs fused sequential runtimes per graph (Fig. 3 series)."""
    workloads = workloads if workloads is not None else suite_workloads()
    rows = []
    for wl in workloads:
        unfused = time_callable(
            lambda: graphblas_delta_stepping(wl.graph, wl.source, wl.delta),
            repeats=repeats,
        )
        fused = time_callable(
            lambda: fused_delta_stepping(wl.graph, wl.source, wl.delta),
            repeats=repeats,
        )
        if verify:
            a = graphblas_delta_stepping(wl.graph, wl.source, wl.delta)
            b = fused_delta_stepping(wl.graph, wl.source, wl.delta)
            assert a.same_distances(b), f"{wl.name}: unfused != fused"
        rows.append(
            {
                "graph": wl.name,
                "nodes": wl.num_vertices,
                "edges": wl.num_edges,
                "unfused_ms": unfused.best_ms,
                "fused_ms": fused.best_ms,
                "speedup": unfused.best / fused.best,
            }
        )
    return rows


def fig4_series(
    workloads: list[Workload] | None = None,
    threads: tuple[int, ...] = (2, 4),
    simulate: bool = True,
    repeats: int = 3,
) -> list[dict]:
    """Task-parallel speedup over sequential fused, per graph (Fig. 4).

    ``simulate=True`` (default) uses the deterministic cost-model executor:
    the paper's task decomposition is measured serially and scheduled onto
    N modeled threads — host-independent, which matters here because
    CPython's GIL prevents real-thread gains for the non-ufunc kernels
    (gather/fancy-indexing) on this workload.  ``simulate=False`` times
    real threads (honest but host- and GIL-gated; see EXPERIMENTS.md).
    """
    workloads = workloads if workloads is not None else suite_workloads()
    rows = []
    for wl in workloads:
        row: dict = {"graph": wl.name, "nodes": wl.num_vertices}
        if simulate:
            for t in threads:
                # self-consistent: serial and simulated time from the same
                # run, so measurement noise cancels out of the ratio
                r = parallel_delta_stepping(wl.graph, wl.source, wl.delta, num_threads=t, simulate=True)
                row[f"speedup_{t}t"] = r.extra["simulated_speedup"]
        else:
            seq = time_callable(
                lambda: fused_delta_stepping(wl.graph, wl.source, wl.delta),
                repeats=repeats,
            )
            for t in threads:
                par = time_callable(
                    lambda: parallel_delta_stepping(wl.graph, wl.source, wl.delta, num_threads=t),
                    repeats=repeats,
                )
                row[f"speedup_{t}t"] = seq.best / par.best
        rows.append(row)
    return rows


#: stage-name groups for the §VI.C breakdown, per implementation
SEC6C_GROUPS = {
    "fused": {
        "matrix_filter": ["filter:AL", "filter:AH", "filter:split"],
        "vector_filter": ["filter:bucket", "filter:settled", "outer:check"],
        "relaxation": ["relax:fused", "relax:tReq", "relax:tless", "relax:tB", "relax:minmerge"],
    },
    "unfused": {
        "matrix_filter": ["filter:AL", "filter:AH"],
        "vector_filter": ["filter:bucket", "filter:reenter", "outer:check"],
        "vxm": ["vxm:light", "vxm:heavy"],
        "vector_other": ["vector:S", "vector:minmerge", "vector:clear"],
    },
}


def sec6c_profile(
    workloads: list[Workload] | None = None,
    implementation: str = "fused",
) -> list[dict]:
    """Share of sequential runtime per stage group (§VI.C).

    The paper's 35-40% matrix-filter share is measured on its *fused
    sequential C* implementation (with A_L and A_H still built
    separately, as the task decomposition requires); ``implementation``
    selects ``"fused"`` (default, matching the paper) or ``"unfused"``.
    """
    from ..obs.stage import StageTimer

    workloads = workloads if workloads is not None else suite_workloads()
    groups = SEC6C_GROUPS[implementation]
    rows = []
    for wl in workloads:
        if implementation == "fused":
            r = fused_delta_stepping(
                wl.graph, wl.source, wl.delta, fuse_matrix_split=False, instrument=True
            )
        else:
            r = graphblas_delta_stepping(wl.graph, wl.source, wl.delta, instrument=True)
        timer = StageTimer()
        for k, v in (r.profile or {}).items():
            timer.add(k, v)
        merged = timer.merged(groups)
        total = sum(merged.values()) or 1.0
        row = {"graph": wl.name, "nodes": wl.num_vertices}
        for gname, secs in merged.items():
            row[f"{gname}_pct"] = 100.0 * secs / total
        rows.append(row)
    return rows


# -- renderers ----------------------------------------------------------------


def render_fig3(rows: list[dict]) -> str:
    """The Fig. 3 panel: table + log-scale runtime chart + headline."""
    table = format_table(
        rows,
        columns=["graph", "nodes", "edges", "unfused_ms", "fused_ms", "speedup"],
    )
    chart = ascii_bar_chart(
        [r["graph"] for r in rows],
        {
            "SuiteSparse-style (unfused)": [r["unfused_ms"] for r in rows],
            "Fused impl.": [r["fused_ms"] for r in rows],
        },
        log_scale=True,
        unit="ms",
    )
    amean = sum(r["speedup"] for r in rows) / len(rows)
    gmean = geometric_mean(r["speedup"] for r in rows)
    return (
        "Fig. 3 — Unfused vs. Fused sequential performance "
        "(graphs ascending by node count)\n\n"
        f"{table}\n\n{chart}\n\n"
        f"Average fused speedup: {amean:.2f}x arithmetic, {gmean:.2f}x geometric "
        "(paper reports 3.7x average in C)\n"
    )


def render_fig4(rows: list[dict], simulate: bool = False) -> str:
    """The Fig. 4 panel: per-graph speedup bars + averages."""
    threads = sorted(
        int(k.split("_")[1][:-1]) for k in rows[0] if k.startswith("speedup_")
    )
    table = format_table(rows, columns=["graph", "nodes"] + [f"speedup_{t}t" for t in threads])
    chart = ascii_bar_chart(
        [r["graph"] for r in rows],
        {f"{t} threads": [r[f"speedup_{t}t"] for r in rows] for t in threads},
        unit="x",
    )
    means = {
        t: sum(r[f"speedup_{t}t"] for r in rows) / len(rows) for t in threads
    }
    means_text = ", ".join(f"{t} threads: {m:.2f}x" for t, m in means.items())
    mode = "simulated schedule" if simulate else "real threads"
    return (
        f"Fig. 4 — Task-parallel speedup over sequential fused ({mode}, "
        "graphs ascending by node count)\n\n"
        f"{table}\n\n{chart}\n\n"
        f"Average speedup: {means_text} "
        "(paper reports 1.44x at 2 threads, 1.5x at 4 threads)\n"
    )


def render_sec6c(rows: list[dict]) -> str:
    """The §VI.C panel: stage-share table + headline."""
    cols = ["graph", "nodes"] + [k for k in rows[0] if k.endswith("_pct")]
    table = format_table(rows, columns=cols)
    avg_filter = sum(r["matrix_filter_pct"] for r in rows) / len(rows)
    return (
        "§VI.C — Share of unfused sequential runtime by operation group\n\n"
        f"{table}\n\n"
        f"Average A_L/A_H matrix-filter share: {avg_filter:.1f}% "
        "(paper reports 35-40%)\n"
    )

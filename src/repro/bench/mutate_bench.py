"""The DYN experiment: incremental repair vs full recompute after mutations.

For each suite graph (uniform weights, so reweights are meaningful) and
each update-batch *fraction*, a deterministic randomized batch of edge
updates — reweights up and down, deletions, insertions — is applied
through :func:`repro.dynamic.apply_edge_updates`, and the post-mutation
distance vector is produced two ways:

- **repair** — :func:`repro.dynamic.repair_sssp` seeded from the batch,
  starting from the cached pre-mutation distances;
- **recompute** — a cold :func:`repro.sssp.fused.fused_delta_stepping`
  run on the mutated graph.

Both answers are verified bit-identical before timing (repair and
recompute converge to the same min-plus fixed point — see
:mod:`repro.dynamic.incremental`).  The headline is the repair speedup
at the smallest batch fraction: the dynamic-SSSP claim is that repairing
a ≤1%-of-edges batch beats re-solving by ≥2x because the touched region
— affected subtree plus improvement cone — is a small fraction of the
graph.
"""

from __future__ import annotations

import numpy as np

from ..dynamic import apply_edge_updates, repair_sssp
from ..graphs import datasets
from ..sssp.delta import choose_delta
from ..sssp.fused import fused_delta_stepping
from .reporting import format_table, geometric_mean
from .timing import time_callable
from .workloads import active_suite_name, workload_for

__all__ = ["mutation_repair_series", "render_mutation_repair", "build_update_batch"]

#: update-batch mix, as fractions of the batch (rest is reweights)
_DELETE_SHARE = 0.2
_INSERT_SHARE = 0.2


def build_update_batch(graph, fraction: float, rng: np.random.Generator):
    """A randomized insert/delete/reweight batch touching ``fraction`` of edges.

    Updates are expressed in undirected-pair granularity (the suite
    graphs are symmetric); reweights scale the stored weight by
    U(0.5, 1.5) — a mix of increases and decreases — deletes drop random
    pairs, inserts add random non-edges with suite-range weights.
    Categories never overlap, matching the batch semantics.
    """
    n = graph.num_vertices
    src_all = graph.row_sources()
    upper = np.nonzero(src_all < graph.indices)[0]  # one slot per undirected pair
    total = max(1, int(fraction * len(upper)))
    num_del = int(total * _DELETE_SHARE)
    num_ins = int(total * _INSERT_SHARE)
    num_rw = max(1, total - num_del - num_ins)

    pick = rng.choice(upper, size=min(num_rw + num_del, len(upper)), replace=False)
    rw_pos, del_pos = pick[:num_rw], pick[num_rw:]
    reweights = (
        src_all[rw_pos],
        graph.indices[rw_pos],
        graph.weights[rw_pos] * rng.uniform(0.5, 1.5, size=len(rw_pos)),
    )
    deletes = (src_all[del_pos], graph.indices[del_pos])

    existing = set(map(int, src_all * np.int64(n) + graph.indices))
    ins_s, ins_d = [], []
    # bounded rejection sampling: dense graphs may not have num_ins
    # non-edges, so give up after a generous budget rather than spin
    for _ in range(max(200, 50 * num_ins)):
        if len(ins_s) >= num_ins:
            break
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v or u * n + v in existing or v * n + u in existing:
            continue
        existing.add(u * n + v)
        existing.add(v * n + u)
        ins_s.append(u)
        ins_d.append(v)
    inserts = (
        np.asarray(ins_s, dtype=np.int64),
        np.asarray(ins_d, dtype=np.int64),
        rng.uniform(0.05, 1.0, size=len(ins_s)),
    )
    return inserts, deletes, reweights


def mutation_repair_series(
    suite: str | None = None,
    fractions: tuple[float, ...] = (0.002, 0.01, 0.05),
    repeats: int = 3,
    seed: int = 17,
    verify: bool = True,
) -> list[dict]:
    """Per-(graph, fraction) repair-vs-recompute timings."""
    names = datasets.suite_names(suite or active_suite_name())
    rows = []
    for name in names:
        base = datasets.load(name, weights="uniform", seed=3)
        source = workload_for(name).source  # component structure is weight-free
        delta = choose_delta(base)
        d0 = fused_delta_stepping(base, source, delta).distances
        rng = np.random.default_rng(seed)
        for fraction in fractions:
            graph = base.copy()
            inserts, deletes, reweights = build_update_batch(graph, fraction, rng)
            applied = apply_edge_updates(
                graph, inserts=inserts, deletes=deletes, reweights=reweights
            )
            repaired = repair_sssp(graph, source, d0, applied, delta=delta)
            if verify:
                oracle = fused_delta_stepping(graph, source, delta).distances
                assert np.array_equal(repaired.distances, oracle), (
                    f"{name}: repair diverged from recompute at fraction {fraction}"
                )
            repair_t = time_callable(
                lambda: repair_sssp(graph, source, d0, applied, delta=delta),
                repeats=repeats,
            )
            recompute_t = time_callable(
                lambda: fused_delta_stepping(graph, source, delta), repeats=repeats
            )
            rows.append(
                {
                    "graph": name,
                    "edges": base.num_edges,
                    "fraction": fraction,
                    "updates": applied.num_updates,
                    "affected": repaired.affected,
                    "repair_ms": repair_t.best_ms,
                    "recompute_ms": recompute_t.best_ms,
                    "speedup": recompute_t.best / repair_t.best,
                }
            )
    return rows


def render_mutation_repair(rows: list[dict]) -> str:
    """The DYN panel: per-(graph, fraction) table + small-batch headline."""
    table = format_table(
        rows,
        columns=[
            "graph", "edges", "fraction", "updates", "affected",
            "repair_ms", "recompute_ms", "speedup",
        ],
        floatfmt=".3f",
    )
    small = [r for r in rows if r["fraction"] <= 0.01]
    small_best = max((r["speedup"] for r in small), default=0.0)
    small_gmean = geometric_mean(r["speedup"] for r in small) if small else 0.0
    gmean = geometric_mean(r["speedup"] for r in rows) if rows else 0.0
    return (
        "DYN — Incremental SSSP repair vs full recompute after edge-update "
        "batches (verified bit-identical)\n\n"
        f"{table}\n\n"
        f"Small batches (<=1% of edges): best {small_best:.2f}x, "
        f"geometric mean {small_gmean:.2f}x repair speedup; "
        f"all batches {gmean:.2f}x\n"
    )

"""The KERNEL experiment: the shared relaxation-kernel core, raced vs seed.

The repo's perf claim for the kernel core (``repro.kernels``) is
concrete: the O(m) scatter-min per-target kernel plus the reusable
workspace plus the lazy bucket queue must beat the *seed* fused
implementation — the pre-kernel-core hot loop with its per-phase
argsort, per-phase temporaries, and per-bucket full-``t`` scans — by
≥1.5× phase throughput on at least one CI graph class, with **zero
correctness drift** (bit-identity against Dijkstra on every graph, for
every kernel).

To keep that comparison honest across future PRs, the seed loop is
frozen *here*, verbatim (:func:`seed_fused_delta_stepping`): the bench
always races today's kernels against the same yardstick, and the
results land in ``BENCH_KERNEL.json`` — the machine-readable perf
trajectory CI's smoke gate reads (scatter must never regress more than
10% behind seed).

Phase throughput is relaxations per second: every variant executes the
identical phase schedule (asserted via phase/relaxation/update counter
equality), so the time ratio *is* the throughput ratio.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..sssp.fused import fused_delta_stepping
from ..sssp.reference import dijkstra
from ..sssp.result import INF, SSSPResult
from .reporting import format_table
from .timing import time_callable
from .workloads import Workload, suite_workloads

__all__ = [
    "kernel_bench_series",
    "render_kernel_bench",
    "kernel_bench_headline",
    "seed_fused_delta_stepping",
    "SPEEDUP_TARGET",
    "SMOKE_TOLERANCE",
]

#: the headline criterion: best new-kernel speedup over seed must reach
#: this on at least one CI graph class
SPEEDUP_TARGET = 1.5
#: the CI smoke gate: scatter may not be slower than seed by more than
#: this factor on the smoke graphs (0.9 == "no more than 10% slower")
SMOKE_TOLERANCE = 0.9


# --------------------------------------------------------------------------
# The frozen seed implementation (the pre-`repro.kernels` hot loop).
# Deliberately NOT refactored onto the shared kernels: this is the
# yardstick, kept allocation-for-allocation identical to the seed.
# --------------------------------------------------------------------------


def _seed_split_csr(graph: Graph, delta: float):
    indptr, indices, weights = graph.csr()
    n = graph.num_vertices

    def build(keep: np.ndarray):
        counts = np.bincount(
            np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))[keep],
            minlength=n,
        )
        sub_indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return sub_indptr, indices[keep], weights[keep]

    light = weights <= delta
    return build(light), build(~light)


def _seed_gather(indptr, indices, weights, frontier, t):
    starts = indptr[frontier]
    lengths = indptr[frontier + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return None, None
    offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
    flat = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, lengths)
    targets = indices[flat]
    dists = np.repeat(t[frontier], lengths) + weights[flat]
    return targets, dists


def _seed_min_by_target(targets, dists):
    order = np.argsort(targets, kind="stable")
    ts = targets[order]
    ds = dists[order]
    boundaries = np.empty(len(ts), dtype=bool)
    boundaries[0] = True
    np.not_equal(ts[1:], ts[:-1], out=boundaries[1:])
    starts = np.nonzero(boundaries)[0]
    return ts[starts], np.minimum.reduceat(ds, starts)


def seed_fused_delta_stepping(graph: Graph, source: int, delta: float = 1.0) -> SSSPResult:
    """The seed fused Δ-stepper, frozen as the KERNEL bench yardstick."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    (ALp, ALi, ALw), (AHp, AHi, AHw) = _seed_split_csr(graph, delta)
    t = np.full(n, INF, dtype=np.float64)
    t[source] = 0.0
    in_bucket = np.zeros(n, dtype=bool)
    settled_set = np.zeros(n, dtype=bool)
    counters = {"buckets": 0, "phases": 0, "relaxations": 0, "updates": 0}

    def relax(indptr, indices, weights, frontier, lo, hi, track_bucket):
        targets, dists = _seed_gather(indptr, indices, weights, frontier, t)
        if targets is None:
            return np.empty(0, dtype=np.int64)
        counters["relaxations"] += len(targets)
        uts, ubest = _seed_min_by_target(targets, dists)
        improved = ubest < t[uts]
        uts = uts[improved]
        ubest = ubest[improved]
        counters["updates"] += len(uts)
        t[uts] = ubest
        if track_bucket:
            reenter = (ubest >= lo) & (ubest < hi)
            return uts[reenter]
        return uts

    i = 0
    while True:
        finite = np.isfinite(t)
        remaining = finite & (t >= i * delta)
        if not remaining.any():
            break
        i = max(i, int(t[remaining].min() // delta))
        lo, hi = i * delta, (i + 1) * delta
        counters["buckets"] += 1
        np.logical_and(t >= lo, t < hi, out=in_bucket)
        frontier = np.nonzero(in_bucket)[0]
        settled_set[:] = False
        while len(frontier):
            counters["phases"] += 1
            settled_set[frontier] = True
            frontier = relax(ALp, ALi, ALw, frontier, lo, hi, track_bucket=True)
        settled = np.nonzero(settled_set)[0]
        if len(settled):
            counters["phases"] += 1
            relax(AHp, AHi, AHw, settled, lo, hi, track_bucket=False)
        i += 1

    return SSSPResult(
        distances=t,
        source=source,
        delta=delta,
        method="seed-fused",
        buckets_processed=counters["buckets"],
        phases=counters["phases"],
        relaxations=counters["relaxations"],
        updates=counters["updates"],
    )


# --------------------------------------------------------------------------
# The experiment
# --------------------------------------------------------------------------

#: the raced variants: name → solve callable factory ``(wl) -> fn``
def _variants(wl: Workload):
    return {
        "seed": lambda: seed_fused_delta_stepping(wl.graph, wl.source, wl.delta),
        "argsort": lambda: fused_delta_stepping(wl.graph, wl.source, wl.delta, kernel="argsort"),
        "scatter": lambda: fused_delta_stepping(wl.graph, wl.source, wl.delta, kernel="scatter"),
        "auto": lambda: fused_delta_stepping(wl.graph, wl.source, wl.delta, kernel="auto"),
    }


def kernel_bench_series(
    workloads: list[Workload] | None = None,
    repeats: int = 5,
    verify: bool = True,
) -> list[dict]:
    """Per-(graph, variant) timings, verified bit-identical to Dijkstra.

    Every graph leads with its ``seed`` row; kernel rows carry the
    speedup over that seed and the derived phase throughput (relaxations
    per millisecond — schedules are counter-identical across variants,
    asserted here, so the ratio is exactly the phase-throughput ratio).
    """
    workloads = workloads if workloads is not None else suite_workloads()
    rows: list[dict] = []
    for wl in workloads:
        oracle = dijkstra(wl.graph, wl.source).distances if verify else None
        variants = _variants(wl)
        seed_res = variants["seed"]()
        seed_ms = None
        for name, run in variants.items():
            # the seed reference run doubles as its own verification run
            res = seed_res if name == "seed" else run()
            # explicit checks, not `assert`: they must survive `python -O`
            # and land in the rows so the gate can actually fail
            if verify and not np.array_equal(res.distances, oracle):
                verified = "FAIL"
            elif verify:
                verified = "ok"
            else:
                verified = "-"
            # phases/relaxations/updates must match seed exactly or the
            # phase-throughput comparison is void — that is a kernel-core
            # bug, not a measurement outcome.  buckets_processed is NOT
            # compared: at misrounding bucket boundaries the seed's
            # division-based index walks (and counts) phantom empty
            # buckets its own product-based window test then rejects; the
            # lazy queue never visits those (matching the Meyer–Sanders
            # reference, which also skips empties), so bucket counts may
            # legitimately differ with zero work done differently.
            if (res.phases, res.relaxations, res.updates) != (
                seed_res.phases, seed_res.relaxations, seed_res.updates,
            ):
                raise RuntimeError(
                    f"{wl.name}: variant {name!r} walked a different "
                    f"phase schedule than seed"
                )
            ms = time_callable(run, repeats=repeats).best_ms
            if name == "seed":
                seed_ms = ms
            rows.append(
                {
                    "graph": wl.name,
                    "family": wl.graph.meta.get("family", "?"),
                    "nodes": wl.num_vertices,
                    "edges": wl.num_edges,
                    "variant": name,
                    "ms": ms,
                    "speedup": seed_ms / ms if ms > 0 else 1.0,
                    "phases": res.phases,
                    "relax_per_ms": res.relaxations / ms if ms > 0 else 0.0,
                    "verified": verified,
                }
            )
    return rows


def kernel_bench_headline(rows: list[dict]) -> dict:
    """The machine-readable verdict stored in ``BENCH_KERNEL.json``.

    ``passed`` requires every row verified and the best new-kernel
    speedup over seed ≥ :data:`SPEEDUP_TARGET` on at least one graph;
    ``smoke_ok`` is the CI gate (scatter ≥ :data:`SMOKE_TOLERANCE` ×
    seed throughput on every measured graph).
    """
    kernel_rows = [r for r in rows if r["variant"] != "seed"]
    all_verified = all(r["verified"] in ("ok", "-") for r in rows)
    best = max(kernel_rows, key=lambda r: r["speedup"], default=None)
    scatter_worst = min(
        (r["speedup"] for r in kernel_rows if r["variant"] == "scatter"),
        default=0.0,
    )
    return {
        "criterion": (
            f"bit-identical to Dijkstra everywhere; best kernel >= "
            f"{SPEEDUP_TARGET}x seed phase throughput on >= 1 graph"
        ),
        "all_verified": all_verified,
        "best_speedup": best["speedup"] if best else 0.0,
        "best_graph": best["graph"] if best else None,
        "best_variant": best["variant"] if best else None,
        "scatter_worst_speedup": scatter_worst,
        "smoke_ok": all_verified and scatter_worst >= SMOKE_TOLERANCE,
        "passed": all_verified and best is not None and best["speedup"] >= SPEEDUP_TARGET,
    }


def render_kernel_bench(rows: list[dict]) -> str:
    """The KERNEL panel: variant table + speedup headline."""
    table = format_table(
        rows,
        columns=[
            "graph", "family", "nodes", "edges", "variant", "ms",
            "speedup", "phases", "relax_per_ms", "verified",
        ],
        floatfmt=".3f",
    )
    head = kernel_bench_headline(rows)
    best_per_graph: dict[str, dict] = {}
    for r in rows:
        if r["variant"] == "seed":
            continue
        cur = best_per_graph.get(r["graph"])
        if cur is None or r["speedup"] > cur["speedup"]:
            best_per_graph[r["graph"]] = r
    lines = [
        "KERNEL — Shared relaxation-kernel core vs the frozen seed hot loop "
        "(every variant verified bit-identical to Dijkstra, identical "
        "phase schedule)",
        "",
        table,
        "",
    ]
    for g, r in best_per_graph.items():
        lines.append(
            f"{g}: best {r['speedup']:.2f}x over seed ({r['variant']}), "
            f"{r['relax_per_ms']:.0f} relaxations/ms"
        )
    verdict = "PASS" if head["passed"] else "MISS"
    lines.append(
        f"\nBest kernel speedup {head['best_speedup']:.2f}x on "
        f"{head['best_graph']} (target >= {SPEEDUP_TARGET}x on >= 1 graph), "
        f"verification {'ok' if head['all_verified'] else 'FAILED'} [{verdict}]"
    )
    return "\n".join(lines) + "\n"

"""Bench history + regression diffing: the perf trajectory as data.

``write_bench_json`` makes every bench run machine-readable; this module
makes the *sequence* of runs mean something:

- :func:`provenance` — the run's identity (git sha, host, cpu count,
  python/numpy versions).  Schema-2 bench payloads embed it, so two
  JSON files can answer "are these numbers even comparable?" before any
  threshold math.
- :class:`BenchHistory` — an append-only ``BENCH_HISTORY.jsonl`` store,
  one slim line per bench run.  Its per-metric series are what makes the
  diff noise-aware: a metric that historically wobbles ±20% gets a wider
  gate than one that holds to ±2%.
- :func:`diff_payloads` / :func:`diff_bench` — compare a fresh
  ``BENCH_<NAME>.json`` against a committed baseline, per row and per
  metric, with direction-aware thresholds (a *drop* in ``speedup`` and a
  *rise* in ``ms`` are both regressions; ``nodes`` is informational).
  ``repro bench-diff`` wires this to the CLI and exits nonzero on any
  regression — the gate that turns a perf claim into something CI holds.

Comparability rules: wall-clock metrics (``ms``, ``qps``, ...) are only
gated when baseline and fresh runs come from the *same host* (schema-2
provenance on both sides); cross-host, they demote to informational so a
laptop baseline can't fail a CI runner.  Ratio metrics (``speedup``,
``vs_best``) and deterministic volumes (``bytes``, ``kb``) are gated
everywhere.  Schema-1 payloads (no provenance) still diff — their
wall-clock metrics just can't be certified same-host.

This module deliberately does **not** import :mod:`repro.bench.registry`
(registry imports *us* for provenance), and touches nothing outside the
stdlib + numpy.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

import numpy as np

__all__ = [
    "HISTORY_FILENAME",
    "provenance",
    "history_path",
    "BenchHistory",
    "load_bench_json",
    "metric_direction",
    "metric_scope",
    "row_key",
    "Finding",
    "DiffResult",
    "diff_payloads",
    "diff_bench",
    "render_diff",
]

#: the JSONL ledger's filename (resolved next to the BENCH_*.json files)
HISTORY_FILENAME = "BENCH_HISTORY.jsonl"

#: bench-payload schema versions this module reads
KNOWN_SCHEMAS = (1, 2)

#: substrings that mark a higher-is-better metric (checked before the
#: lower-is-better suffixes so ``relax_per_ms`` classifies as throughput)
_HIGHER_TOKENS = ("speedup", "qps", "throughput", "per_ms", "hit_rate")

#: lower-is-better suffixes/names (times and volumes)
_LOWER_SUFFIXES = ("_ms", "seconds", "bytes", "_kb")
_LOWER_NAMES = ("ms", "kb", "vs_best")

#: wall-clock metrics: only same-host comparisons are meaningful
#: (vs_best is a race between timings, so it inherits their noise)
_HOST_TOKENS = ("ms", "seconds", "qps", "throughput", "per_ms", "vs_best")

#: numeric row fields that are configuration, not measurement — they
#: join the row key instead of being diffed
_KEY_NUMERIC_FIELDS = frozenset({"shards", "fraction", "queries", "threads"})

#: string row fields that are run *outcomes*, not configuration — they
#: stay out of the row key (a flipped tuner pick must not orphan the row)
_OUTCOME_FIELDS = frozenset({"verified", "picked"})

#: absolute floor for time comparisons: both sides under this many ms is
#: timer noise, not signal
_TIME_FLOOR_MS = 0.05

#: noise widening: tolerance grows to this many historical CVs
_NOISE_SIGMAS = 3.0


# --------------------------------------------------------------------------
# provenance
# --------------------------------------------------------------------------


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def provenance() -> dict[str, Any]:
    """The run-identity dict schema-2 bench payloads embed.

    ``git_sha`` is ``None`` outside a git checkout; everything else is
    always present.  ``host`` is what the same-host gating of wall-clock
    metrics keys on.
    """
    return {
        "git_sha": _git_sha(),
        "host": socket.gethostname(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
    }


# --------------------------------------------------------------------------
# the JSONL history store
# --------------------------------------------------------------------------


def history_path(path: str | os.PathLike | None = None) -> Path:
    """Where ``BENCH_HISTORY.jsonl`` lives.

    Explicit *path* wins; else ``$REPRO_BENCH_HISTORY``; else
    ``HISTORY_FILENAME`` inside ``$REPRO_BENCH_DIR`` (or the cwd) — the
    same resolution ladder as ``bench_json_path``.
    """
    if path is not None:
        return Path(path)
    env = os.environ.get("REPRO_BENCH_HISTORY")
    if env:
        return Path(env)
    base = os.environ.get("REPRO_BENCH_DIR", ".")
    return Path(base) / HISTORY_FILENAME


def _json_safe(value: Any) -> Any:
    """NumPy scalars → plain JSON values (arrays become lists)."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class BenchHistory:
    """Append-only JSONL ledger of bench runs.

    One line per ``write_bench_json`` payload, slimmed to what the diff
    needs: experiment, schema, timestamp, provenance, headline, and the
    flat ``{row_key: {metric: value}}`` measurement map.  Corrupt lines
    are skipped on read (an append-only log must survive a torn write).
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = history_path(path)

    def append(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Record one bench payload; returns the slim entry written."""
        rows = payload.get("rows", [])
        entry = {
            "experiment": payload.get("experiment"),
            "schema": payload.get("schema"),
            "written_at": payload.get("written_at")
            or time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "provenance": _json_safe(payload.get("provenance") or {}),
            "headline": _json_safe(payload.get("headline") or {}),
            "metrics": {
                row_key(row): {
                    k: _json_safe(v)
                    for k, v in row.items()
                    if isinstance(v, (int, float, np.integer, np.floating))
                    and not isinstance(v, bool)
                    and k not in _KEY_NUMERIC_FIELDS
                }
                for row in rows
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # heal a torn final line (crashed writer) so the new entry is
        # not glued onto garbage and lost with it
        needs_newline = False
        if self.path.exists():
            with open(self.path, "rb") as fh:
                try:
                    fh.seek(-1, os.SEEK_END)
                    needs_newline = fh.read(1) != b"\n"
                except OSError:  # empty file
                    pass
        with open(self.path, "a") as fh:
            if needs_newline:
                fh.write("\n")
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
        return entry

    def entries(self, experiment: str | None = None) -> list[dict[str, Any]]:
        """All (parseable) entries, oldest first, optionally filtered."""
        if not self.path.exists():
            return []
        out: list[dict[str, Any]] = []
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(entry, dict):
                    continue
                if experiment and entry.get("experiment") != experiment.upper():
                    continue
                out.append(entry)
        return out

    def series(
        self, experiment: str, key: str, metric: str, host: str | None = None
    ) -> list[float]:
        """The historical values of one (row, metric), oldest first.

        With *host* given, only entries from that host contribute — the
        noise model must not mix machines.
        """
        values: list[float] = []
        for entry in self.entries(experiment):
            if host is not None and entry.get("provenance", {}).get("host") != host:
                continue
            value = entry.get("metrics", {}).get(key, {}).get(metric)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values.append(float(value))
        return values

    def __len__(self) -> int:
        return len(self.entries())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BenchHistory<{self.path}>"


# --------------------------------------------------------------------------
# payload loading + metric classification
# --------------------------------------------------------------------------


def load_bench_json(path: str | os.PathLike) -> dict[str, Any]:
    """Load and validate one ``BENCH_<NAME>.json`` payload (schema 1 or 2)."""
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "rows" not in payload:
        raise ValueError(f"{path!s} is not a bench payload (no 'rows')")
    schema = payload.get("schema")
    if schema not in KNOWN_SCHEMAS:
        raise ValueError(
            f"{path!s} has unknown bench schema {schema!r} (known: {KNOWN_SCHEMAS})"
        )
    return payload


def metric_direction(name: str) -> str:
    """``"higher"`` / ``"lower"`` / ``"info"`` for one metric name.

    Higher-is-better tokens win first (``relax_per_ms`` is throughput,
    not a time); then the time/volume suffixes; everything else —
    ``nodes``, ``edges``, ``phases``, ``cut_frac`` — is informational
    and never gated.
    """
    lowered = name.lower()
    if any(tok in lowered for tok in _HIGHER_TOKENS):
        return "higher"
    if lowered in _LOWER_NAMES or lowered.endswith(_LOWER_SUFFIXES):
        return "lower"
    return "info"


def metric_scope(name: str) -> str:
    """``"host"`` (wall-clock — same-host comparisons only) or
    ``"portable"`` (ratios and deterministic volumes)."""
    lowered = name.lower()
    if lowered in ("ms",) or any(tok in lowered for tok in _HOST_TOKENS):
        return "host"
    return "portable"


def row_key(row: dict[str, Any]) -> str:
    """The identity of one bench row: its string-valued configuration
    fields plus the numeric configuration axes (shards, fraction, ...),
    rendered ``k=v/k=v`` in key order."""
    parts = []
    for k in sorted(row):
        v = row[k]
        if k in _OUTCOME_FIELDS:
            continue
        if isinstance(v, str) or k in _KEY_NUMERIC_FIELDS:
            parts.append(f"{k}={v}")
    return "/".join(parts) if parts else "<row>"


# --------------------------------------------------------------------------
# the diff
# --------------------------------------------------------------------------


@dataclass
class Finding:
    """One compared metric (or correctness flag) and its verdict."""

    experiment: str
    key: str
    metric: str
    baseline: Any
    fresh: Any
    status: str  #: "ok" | "regression" | "improved" | "info" | "skipped"
    change: float | None = None  #: signed relative change, + = worsened
    tolerance: float | None = None
    note: str = ""


@dataclass
class DiffResult:
    """Everything :func:`diff_payloads` concluded about one experiment."""

    experiment: str
    findings: list[Finding] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Finding]:
        return [f for f in self.findings if f.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _hosts_match(baseline: dict[str, Any], fresh: dict[str, Any]) -> bool:
    b = baseline.get("provenance") or {}
    f = fresh.get("provenance") or {}
    return bool(b.get("host")) and b.get("host") == f.get("host")


def _num(value: Any) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def diff_payloads(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    history: BenchHistory | None = None,
    time_tolerance: float = 0.5,
    ratio_tolerance: float = 0.25,
    absolute: str = "auto",
) -> DiffResult:
    """Compare a fresh bench payload against a committed baseline.

    Rows pair up by :func:`row_key`; each shared numeric metric is
    classified by :func:`metric_direction` and judged against a relative
    tolerance — *time_tolerance* for wall-clock metrics, *ratio_tolerance*
    for ratios and volumes — widened to ``3×`` the metric's historical
    coefficient of variation when *history* holds ≥3 same-host samples.

    *absolute* controls wall-clock gating: ``"auto"`` gates only when
    both payloads carry the same schema-2 host, ``"always"`` gates
    regardless, ``"never"`` demotes every wall-clock metric to info.

    Correctness riders: a row whose baseline ``verified`` is ``"ok"``
    must stay ``"ok"``; a headline boolean that was ``True`` must stay
    ``True``.  Those regress with no tolerance at all.
    """
    if absolute not in ("auto", "always", "never"):
        raise ValueError(f"absolute must be auto/always/never, got {absolute!r}")
    experiment = str(fresh.get("experiment") or baseline.get("experiment") or "?")
    result = DiffResult(experiment=experiment)

    gate_absolute = absolute == "always" or (
        absolute == "auto" and _hosts_match(baseline, fresh)
    )
    if absolute == "auto" and not gate_absolute:
        result.notes.append(
            "wall-clock metrics are informational: baseline and fresh runs "
            "are not certified same-host (need schema-2 provenance on both)"
        )
    host = (fresh.get("provenance") or {}).get("host")

    base_rows = {row_key(r): r for r in baseline.get("rows", [])}
    fresh_rows = {row_key(r): r for r in fresh.get("rows", [])}

    for key in sorted(base_rows.keys() | fresh_rows.keys()):
        brow, frow = base_rows.get(key), fresh_rows.get(key)
        if brow is None or frow is None:
            note = (
                "row only in fresh run (no baseline)"
                if brow is None
                else "row missing from fresh run"
            )
            result.findings.append(
                Finding(experiment, key, "<row>", None, None, "skipped", note=note)
            )
            continue

        # correctness rider: verified must not flip away from "ok"
        if str(brow.get("verified", "")).lower() == "ok":
            fv = str(frow.get("verified", ""))
            status = "ok" if fv.lower() == "ok" else "regression"
            result.findings.append(
                Finding(
                    experiment, key, "verified", brow.get("verified"), frow.get("verified"),
                    status,
                    note="" if status == "ok" else "verification flipped away from ok",
                )
            )

        for metric in sorted(brow.keys() & frow.keys()):
            b, f = _num(brow[metric]), _num(frow[metric])
            if b is None or f is None or metric in _KEY_NUMERIC_FIELDS:
                continue
            direction = metric_direction(metric)
            if direction == "info":
                continue
            scope = metric_scope(metric)
            if scope == "host" and not gate_absolute:
                result.findings.append(
                    Finding(experiment, key, metric, b, f, "info",
                            note="cross-host wall clock, not gated")
                )
                continue
            if scope == "host" and max(abs(b), abs(f)) < _TIME_FLOOR_MS:
                result.findings.append(
                    Finding(experiment, key, metric, b, f, "skipped",
                            note=f"both sides under the {_TIME_FLOOR_MS} ms timer floor")
                )
                continue

            base_tol = time_tolerance if scope == "host" else ratio_tolerance
            tol, note = base_tol, ""
            if history is not None:
                samples = history.series(experiment, key, metric,
                                         host=host if scope == "host" else None)
                if len(samples) >= 3:
                    arr = np.asarray(samples, dtype=float)
                    mean = float(arr.mean())
                    if mean:
                        cv = float(arr.std()) / abs(mean)
                        widened = _NOISE_SIGMAS * cv
                        if widened > tol:
                            tol = widened
                            note = (f"tolerance widened to {tol:.0%} from "
                                    f"{len(samples)} historical samples (cv {cv:.0%})")

            if b == 0:
                change = 0.0 if f == 0 else float("inf")
            else:
                # signed relative change, positive = worsened
                change = (f - b) / abs(b) if direction == "lower" else (b - f) / abs(b)
            if change > tol:
                status = "regression"
            elif change < -tol:
                status = "improved"
            else:
                status = "ok"
            result.findings.append(
                Finding(experiment, key, metric, b, f, status,
                        change=change, tolerance=tol, note=note)
            )

    # headline riders: a True boolean claim must stay True; numeric
    # headline metrics diff like row metrics
    bhead = baseline.get("headline") or {}
    fhead = fresh.get("headline") or {}
    for name in sorted(bhead.keys() & fhead.keys()):
        bv, fv = bhead[name], fhead[name]
        if isinstance(bv, bool):
            if bv and not fv:
                result.findings.append(
                    Finding(experiment, "<headline>", name, bv, fv, "regression",
                            note="headline claim flipped to False")
                )
            else:
                result.findings.append(
                    Finding(experiment, "<headline>", name, bv, fv,
                            "ok" if isinstance(fv, bool) else "info")
                )
    return result


def diff_bench(
    name: str,
    baseline_dir: str | os.PathLike = ".",
    fresh_dir: str | os.PathLike | None = None,
    history: BenchHistory | None = None,
    **kwargs: Any,
) -> DiffResult:
    """Diff ``BENCH_<NAME>.json`` in *fresh_dir* against *baseline_dir*.

    *fresh_dir* defaults to ``$REPRO_BENCH_DIR`` (or the cwd) — where a
    just-run bench landed its JSON.  Keyword arguments pass through to
    :func:`diff_payloads`.
    """
    filename = f"BENCH_{name.upper()}.json"
    baseline = load_bench_json(Path(baseline_dir) / filename)
    fresh_base = (
        Path(fresh_dir)
        if fresh_dir is not None
        else Path(os.environ.get("REPRO_BENCH_DIR", "."))
    )
    fresh = load_bench_json(fresh_base / filename)
    return diff_payloads(baseline, fresh, history=history, **kwargs)


def render_diff(result: DiffResult, verbose: bool = False) -> str:
    """One experiment's diff as a text panel (regressions always shown;
    *verbose* adds every compared metric)."""
    lines = [f"bench-diff {result.experiment}"]
    for note in result.notes:
        lines.append(f"  note: {note}")
    counts: dict[str, int] = {}
    for f in result.findings:
        counts[f.status] = counts.get(f.status, 0) + 1
    for f in result.findings:
        if f.status != "regression" and not verbose:
            continue
        marker = {"regression": "REGRESSION", "improved": "improved",
                  "ok": "ok", "info": "info", "skipped": "skip"}[f.status]
        if f.change is not None and f.tolerance is not None:
            detail = (f"{f.baseline:g} -> {f.fresh:g} "
                      f"({f.change:+.0%} vs tol {f.tolerance:.0%})")
        else:
            detail = f"{f.baseline!r} -> {f.fresh!r}"
        note = f"  [{f.note}]" if f.note else ""
        lines.append(f"  {marker:<10} {f.key} :: {f.metric}  {detail}{note}")
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    lines.append(f"  == {'PASS' if result.ok else 'FAIL'} ({summary or 'nothing compared'})")
    return "\n".join(lines)

"""Plain-text rendering of benchmark series: tables and ASCII charts.

The harness prints the same rows/series the paper's figures plot; these
helpers keep that output aligned and diff-friendly (EXPERIMENTS.md embeds
it verbatim).
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["format_table", "ascii_bar_chart", "geometric_mean"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the right average for ratios/speedups)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(rows: list[dict], columns: list[str] | None = None, floatfmt: str = ".2f") -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())

    def cell(v) -> str:
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    rendered = [[cell(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(columns[k]), *(len(row[k]) for row in rendered))
        for k in range(len(columns))
    ]
    header = "  ".join(c.ljust(widths[k]) for k, c in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(row[k].rjust(widths[k]) if _numericish(rows[i].get(columns[k])) else row[k].ljust(widths[k]) for k in range(len(columns)))
        for i, row in enumerate(rendered)
    )
    return f"{header}\n{rule}\n{body}"


def _numericish(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def ascii_bar_chart(
    labels: list[str],
    series: dict[str, list[float]],
    width: int = 48,
    log_scale: bool = False,
    unit: str = "",
) -> str:
    """Grouped horizontal bar chart (one row group per label).

    ``log_scale=True`` mimics the paper's Fig. 3 log-runtime axis.
    """
    all_vals = [v for vs in series.values() for v in vs if v > 0]
    if not all_vals:
        return "(no data)"
    vmax = max(all_vals)
    vmin = min(all_vals)
    label_w = max(len(x) for x in labels)
    series_w = max(len(s) for s in series)

    def bar(v: float) -> int:
        if v <= 0:
            return 0
        if log_scale and vmax > vmin:
            lo, hi = math.log(vmin), math.log(vmax)
            frac = (math.log(v) - lo) / (hi - lo) if hi > lo else 1.0
            return max(1, int(round(frac * (width - 1))) + 1)
        return max(1, int(round(v / vmax * width)))

    lines = []
    for k, label in enumerate(labels):
        for s_name, vals in series.items():
            v = vals[k]
            lines.append(
                f"{label.ljust(label_w)}  {s_name.ljust(series_w)} "
                f"|{'#' * bar(v)} {v:.3g}{unit}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()

"""Benchmark workloads: graph + source + Δ triples.

The paper's configuration (§VI.A): undirected unit-weight graphs, Δ=1.
Sources are chosen from the largest connected component (a disconnected
source would measure an empty traversal — the GAP benchmark suite makes
the same choice), deterministically per graph.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass

import numpy as np

from ..graphs import datasets
from ..graphs.graph import Graph
from ..graphs.stats import connected_components

__all__ = ["Workload", "workload_for", "suite_workloads", "active_suite_name"]


@dataclass(frozen=True)
class Workload:
    """One benchmark unit: run SSSP on *graph* from *source* with Δ."""

    name: str
    graph: Graph = None  # type: ignore[assignment]
    source: int = 0
    delta: float = 1.0

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Workload<{self.name}, src={self.source}, delta={self.delta}>"


@functools.lru_cache(maxsize=64)
def _source_in_largest_component(name: str) -> int:
    g = datasets.load(name)
    labels = connected_components(g)
    if len(labels) == 0:
        return 0
    largest = int(np.bincount(labels).argmax())
    return int(np.nonzero(labels == largest)[0][0])


@functools.lru_cache(maxsize=64)
def workload_for(name: str, delta: float = 1.0, weights: str = "unit") -> Workload:
    """Build the canonical workload for a catalog graph."""
    return Workload(
        name=name,
        graph=datasets.load(name, weights=weights),
        source=_source_in_largest_component(name),
        delta=delta,
    )


def active_suite_name(default: str = "ci") -> str:
    """Suite selection for pytest benches: ``REPRO_SUITE=ci|paper``.

    ``ci`` (default) keeps ``pytest benchmarks/`` fast; ``paper`` runs the
    full Fig. 3/Fig. 4 suite (minutes, used to produce EXPERIMENTS.md).
    """
    return os.environ.get("REPRO_SUITE", default)


def suite_workloads(kind: str | None = None, delta: float = 1.0, weights: str = "unit") -> list[Workload]:
    """Workloads for a whole suite, ascending node count (figure order)."""
    kind = kind or active_suite_name()
    return [workload_for(name, delta=delta, weights=weights) for name in datasets.suite_names(kind)]

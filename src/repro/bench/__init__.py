"""Benchmark harness regenerating every figure in the paper's evaluation.

- :mod:`~repro.bench.workloads` — the graph suite (Fig. 3/4's x-axis).
- :mod:`~repro.bench.figures` — series generators + ASCII renderers for
  Fig. 3, Fig. 4, and the §VI.C profile claim.
- :mod:`~repro.bench.registry` — experiment table driving the CLI and
  EXPERIMENTS.md.
- :mod:`~repro.bench.history` — bench provenance, the append-only
  ``BENCH_HISTORY.jsonl`` ledger, and the ``repro bench-diff``
  regression gate.
- :mod:`~repro.bench.timing` / :mod:`~repro.bench.reporting` — protocol
  and output plumbing.

``pytest benchmarks/`` wraps the same series in pytest-benchmark; the CLI
(``python -m repro fig3 --suite paper``) prints the full panels.
"""

from .figures import (
    fig3_series,
    fig4_series,
    render_fig3,
    render_fig4,
    render_sec6c,
    sec6c_profile,
)
from .history import BenchHistory, diff_bench, diff_payloads, provenance, render_diff
from .registry import EXPERIMENTS, Experiment, run_experiment
from .reporting import ascii_bar_chart, format_table, geometric_mean
from .timing import TimingStats, time_callable
from .workloads import Workload, active_suite_name, suite_workloads, workload_for

__all__ = [
    "fig3_series",
    "fig4_series",
    "sec6c_profile",
    "render_fig3",
    "render_fig4",
    "render_sec6c",
    "EXPERIMENTS",
    "Experiment",
    "run_experiment",
    "BenchHistory",
    "diff_bench",
    "diff_payloads",
    "provenance",
    "render_diff",
    "ascii_bar_chart",
    "format_table",
    "geometric_mean",
    "TimingStats",
    "time_callable",
    "Workload",
    "workload_for",
    "suite_workloads",
    "active_suite_name",
]

"""The SHARD experiment: partition-parallel stepping, measured honestly.

For each suite graph, the classic fused Δ-stepper sets the sequential
baseline; then every (partitioner, shard count) configuration of the
sharded stepper solves the same workload.  Three things are reported per
configuration, because all three decide whether sharding is worth it:

- **speedup** over the sequential baseline (the transport matters: the
  thread transport overlaps shard steps for real, the inline transport
  measures pure protocol overhead);
- **cut quality** — the fraction of edges crossing shards, per
  partitioner;
- **communication volume** — the entries/bytes the frontier exchange
  actually carried, the number a multi-machine deployment pays latency
  for.

Every configuration is verified **bit-identical** to Dijkstra before
timing (the sharded schedule is one more label-correcting order over the
same min-plus fixed point), and the verification is the experiment's
PASS criterion — on CI-sized graphs speedup is reported, not asserted,
since Python-level sharding of millisecond solves can legitimately lose
to its own overhead.
"""

from __future__ import annotations

import numpy as np

from ..shard import ShardedDeltaStepper, partition_graph
from ..shard.partition import PARTITIONERS
from ..sssp.reference import dijkstra
from ..stepping import get_stepper
from .reporting import format_table
from .timing import time_callable
from .workloads import Workload, suite_workloads

__all__ = ["sharded_scaling_series", "render_sharded_scaling"]


def sharded_scaling_series(
    workloads: list[Workload] | None = None,
    shard_counts: tuple[int, ...] = (2, 4),
    partitioners: tuple[str, ...] | None = None,
    transport: str = "threads",
    repeats: int = 3,
    verify: bool = True,
) -> list[dict]:
    """Per-(graph, partitioner, shard-count) timings + exchange metrics.

    Each graph leads with its sequential baseline row (``partitioner
    "-"``, 1 shard); configuration rows carry speedup over that
    baseline, the partition's cut fraction, and the run's communication
    volume.  ``verified`` is ``"ok"`` only when the configuration's
    distances matched Dijkstra bitwise.
    """
    workloads = workloads if workloads is not None else suite_workloads()
    partitioners = (
        tuple(partitioners) if partitioners is not None else tuple(PARTITIONERS)
    )
    if not shard_counts:
        raise ValueError("need at least one shard count")
    baseline = get_stepper("delta")
    stepper = ShardedDeltaStepper()
    rows: list[dict] = []
    for wl in workloads:
        oracle = dijkstra(wl.graph, wl.source).distances if verify else None
        base_ms = time_callable(
            lambda: baseline.solve(wl.graph, wl.source), repeats=repeats
        ).best_ms
        rows.append(
            {
                "graph": wl.name,
                "family": wl.graph.meta.get("family", "?"),
                "partitioner": "-",
                "shards": 1,
                "ms": base_ms,
                "speedup": 1.0,
                "cut_frac": 0.0,
                "entries": 0,
                "kb": 0.0,
                "verified": "ok" if verify else "-",
            }
        )
        for part in partitioners:
            for k in shard_counts:
                sg = partition_graph(wl.graph, k, part)
                run = lambda: stepper.solve(
                    wl.graph, wl.source, sharded=sg, transport=transport
                )
                res = run()
                ok = oracle is None or bool(np.array_equal(res.distances, oracle))
                assert ok, (
                    f"{wl.name}: sharded({part}, {k}) differs from Dijkstra"
                )
                ms = time_callable(run, repeats=repeats).best_ms
                rows.append(
                    {
                        "graph": wl.name,
                        "family": wl.graph.meta.get("family", "?"),
                        "partitioner": part,
                        "shards": sg.num_shards,
                        "ms": ms,
                        "speedup": base_ms / ms if ms > 0 else 1.0,
                        "cut_frac": sg.cut_fraction,
                        "entries": res.extra["entries_carried"],
                        "kb": res.extra["bytes_carried"] / 1024.0,
                        "verified": "ok" if verify else "-",
                    }
                )
    return rows


def render_sharded_scaling(rows: list[dict]) -> str:
    """The SHARD panel: configuration table + speedup/volume headline."""
    table = format_table(
        rows,
        columns=[
            "graph", "family", "partitioner", "shards", "ms", "speedup",
            "cut_frac", "entries", "kb", "verified",
        ],
        floatfmt=".3f",
    )
    config_rows = [r for r in rows if r["shards"] > 1]
    best: dict[str, dict] = {}
    for r in config_rows:
        if r["graph"] not in best or r["speedup"] > best[r["graph"]]["speedup"]:
            best[r["graph"]] = r
    all_verified = all(r["verified"] in ("ok", "-") for r in rows)
    multi = sum(1 for r in best.values() if r["speedup"] >= 1.0)
    total_kb = sum(r["kb"] for r in config_rows)
    lines = [
        "SHARD — Partition-parallel sharded stepper (all configurations "
        "verified bit-identical to Dijkstra)",
        "",
        table,
        "",
    ]
    for g, r in best.items():
        lines.append(
            f"{g}: best {r['speedup']:.2f}x at {r['partitioner']}/"
            f"{r['shards']} shards, cut {r['cut_frac']:.1%}, "
            f"{r['entries']} entries ({r['kb']:.1f} KiB) exchanged"
        )
    verdict = "PASS" if all_verified else "MISS"
    lines.append(
        f"\nBit-identity on every (partitioner, shard-count) configuration "
        f"[{verdict}]; {multi}/{len(best)} graphs see >=1.0x from a "
        f"multi-shard configuration; {total_kb:.1f} KiB total exchange volume."
    )
    return "\n".join(lines) + "\n"

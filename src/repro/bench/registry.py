"""Experiment registry: one entry per paper artifact (DESIGN.md §4).

Each experiment knows how to produce its rows and render its panel; the
CLI and EXPERIMENTS.md generation iterate this table so no figure can be
silently dropped.

The registry is also where the repo's **perf trajectory** is written:
:func:`write_bench_json` is the one shared writer every bench runner
(``serve-bench``, ``mutate-bench``, ``step-bench``, ``shard-bench``,
``kernel-bench``) emits its rows through, as ``BENCH_<NAME>.json`` next
to the repo root — machine-readable results a CI gate (or a future PR's
regression check) can diff without scraping the rendered panels.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from .history import provenance
from .figures import (
    fig3_series,
    fig4_series,
    render_fig3,
    render_fig4,
    render_sec6c,
    sec6c_profile,
)
from .kernel_bench import kernel_bench_series, render_kernel_bench
from .mutate_bench import mutation_repair_series, render_mutation_repair
from .service_bench import render_service_throughput, service_throughput_series
from .shard_bench import render_sharded_scaling, sharded_scaling_series
from .step_bench import render_stepping_portfolio, stepping_portfolio_series
from .workloads import suite_workloads

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiment_rows",
    "render_experiment",
    "write_bench_json",
    "bench_json_path",
]


@dataclass(frozen=True)
class Experiment:
    """A reproducible paper artifact."""

    id: str
    paper_artifact: str
    claim: str
    run: Callable[..., list[dict]] = None  # type: ignore[assignment]
    render: Callable[[list[dict]], str] = None  # type: ignore[assignment]


def _fig4_render(rows):
    return render_fig4(rows)


EXPERIMENTS: dict[str, Experiment] = {
    "FIG3": Experiment(
        id="FIG3",
        paper_artifact="Figure 3",
        claim="Fused sequential implementation beats unfused SuiteSparse-style by ~3.7x on average",
        run=lambda suite=None, **kw: fig3_series(suite_workloads(suite), **kw),
        render=render_fig3,
    ),
    "FIG4": Experiment(
        id="FIG4",
        paper_artifact="Figure 4",
        claim="OpenMP-task parallelism gains ~1.44x (2T) and ~1.5x (4T) over sequential fused",
        run=lambda suite=None, **kw: fig4_series(suite_workloads(suite), **kw),
        render=_fig4_render,
    ),
    "SEC6C": Experiment(
        id="SEC6C",
        paper_artifact="Section VI.C (text claim)",
        claim="A_L/A_H matrix filtering consumes 35-40% of sequential runtime",
        run=lambda suite=None, **kw: sec6c_profile(suite_workloads(suite), **kw),
        render=render_sec6c,
    ),
    "SERVE": Experiment(
        id="SERVE",
        paper_artifact="Extension (service layer)",
        claim="Batched multi-source engine serves >=3x the query throughput of a per-query fused loop",
        run=lambda suite=None, **kw: service_throughput_series(suite_workloads(suite), **kw),
        render=render_service_throughput,
    ),
    "DYN": Experiment(
        id="DYN",
        paper_artifact="Extension (dynamic graphs)",
        claim="Incremental repair beats full recompute >=2x for small (<=1% of edges) update batches",
        run=lambda suite=None, **kw: mutation_repair_series(suite=suite, **kw),
        render=render_mutation_repair,
    ),
    "STEP": Experiment(
        id="STEP",
        paper_artifact="Extension (stepping portfolio)",
        claim="No stepper dominates across graph families; the auto-tuner's pick is within 10% of the best measured per graph",
        run=lambda suite=None, **kw: stepping_portfolio_series(suite_workloads(suite), **kw),
        render=render_stepping_portfolio,
    ),
    "SHARD": Experiment(
        id="SHARD",
        paper_artifact="Extension (sharded execution)",
        claim="The partition-parallel sharded stepper is bit-identical to Dijkstra on every (partitioner, shard-count) configuration, with speedup and communication volume reported per partitioner",
        run=lambda suite=None, **kw: sharded_scaling_series(suite_workloads(suite), **kw),
        render=render_sharded_scaling,
    ),
    "KERNEL": Experiment(
        id="KERNEL",
        paper_artifact="Extension (relaxation-kernel core)",
        claim="The shared scatter-min kernel core is bit-identical to Dijkstra on every CI graph and reaches >=1.5x phase throughput over the frozen seed hot loop on at least one graph class",
        run=lambda suite=None, **kw: kernel_bench_series(suite_workloads(suite), **kw),
        render=render_kernel_bench,
    ),
}


def run_experiment_rows(exp_id: str, suite: str | None = None, **kwargs) -> list[dict]:
    """Produce one experiment's rows (the JSON-able measurement record)."""
    return EXPERIMENTS[exp_id.upper()].run(suite=suite, **kwargs)


def render_experiment(exp_id: str, rows: list[dict], **kwargs) -> str:
    """Render previously produced rows as the experiment's text panel."""
    exp = EXPERIMENTS[exp_id.upper()]
    if exp_id.upper() == "FIG4":
        return render_fig4(rows, simulate=kwargs.get("simulate", True))
    return exp.render(rows)


def run_experiment(exp_id: str, suite: str | None = None, **kwargs) -> str:
    """Run one experiment end-to-end and return its rendered panel."""
    rows = run_experiment_rows(exp_id, suite=suite, **kwargs)
    return render_experiment(exp_id, rows, **kwargs)


# --------------------------------------------------------------------------
# The perf-trajectory writer
# --------------------------------------------------------------------------


def _json_default(value):
    """NumPy scalars/arrays → plain JSON values."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value)!r}")


def bench_json_path(name: str, directory: str | os.PathLike | None = None) -> Path:
    """Where ``BENCH_<NAME>.json`` lands.

    *directory* wins; else ``$REPRO_BENCH_DIR`` (the test suite points
    this at a tmpdir); else the current working directory — which is the
    repo root for every documented bench invocation.
    """
    base = directory if directory is not None else os.environ.get("REPRO_BENCH_DIR", ".")
    return Path(base) / f"BENCH_{name.upper()}.json"


def write_bench_json(
    name: str,
    rows: list[dict],
    headline: dict | None = None,
    directory: str | os.PathLike | None = None,
) -> Path:
    """Persist one bench run as ``BENCH_<NAME>.json`` (the shared writer).

    The payload is the experiment's raw rows plus an optional headline
    dict (the machine-readable verdict, e.g. the KERNEL bench's
    pass/fail and best speedup) and enough provenance to diff runs:
    schema 2 embeds :func:`repro.bench.history.provenance` (git sha,
    host, cpu count, python/numpy versions), which is what lets
    ``repro bench-diff`` certify two payloads same-host before gating
    wall-clock metrics.  Returns the written path.
    """
    payload = {
        "experiment": name.upper(),
        "schema": 2,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "claim": EXPERIMENTS[name.upper()].claim if name.upper() in EXPERIMENTS else None,
        "provenance": provenance(),
        "headline": headline or {},
        "rows": rows,
    }
    path = bench_json_path(name, directory)
    path.write_text(json.dumps(payload, indent=2, default=_json_default) + "\n")
    return path

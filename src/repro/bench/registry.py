"""Experiment registry: one entry per paper artifact (DESIGN.md §4).

Each experiment knows how to produce its rows and render its panel; the
CLI and EXPERIMENTS.md generation iterate this table so no figure can be
silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .figures import (
    fig3_series,
    fig4_series,
    render_fig3,
    render_fig4,
    render_sec6c,
    sec6c_profile,
)
from .mutate_bench import mutation_repair_series, render_mutation_repair
from .service_bench import render_service_throughput, service_throughput_series
from .shard_bench import render_sharded_scaling, sharded_scaling_series
from .step_bench import render_stepping_portfolio, stepping_portfolio_series
from .workloads import suite_workloads

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """A reproducible paper artifact."""

    id: str
    paper_artifact: str
    claim: str
    run: Callable[..., list[dict]] = None  # type: ignore[assignment]
    render: Callable[[list[dict]], str] = None  # type: ignore[assignment]


def _fig4_render(rows):
    return render_fig4(rows)


EXPERIMENTS: dict[str, Experiment] = {
    "FIG3": Experiment(
        id="FIG3",
        paper_artifact="Figure 3",
        claim="Fused sequential implementation beats unfused SuiteSparse-style by ~3.7x on average",
        run=lambda suite=None, **kw: fig3_series(suite_workloads(suite), **kw),
        render=render_fig3,
    ),
    "FIG4": Experiment(
        id="FIG4",
        paper_artifact="Figure 4",
        claim="OpenMP-task parallelism gains ~1.44x (2T) and ~1.5x (4T) over sequential fused",
        run=lambda suite=None, **kw: fig4_series(suite_workloads(suite), **kw),
        render=_fig4_render,
    ),
    "SEC6C": Experiment(
        id="SEC6C",
        paper_artifact="Section VI.C (text claim)",
        claim="A_L/A_H matrix filtering consumes 35-40% of sequential runtime",
        run=lambda suite=None, **kw: sec6c_profile(suite_workloads(suite), **kw),
        render=render_sec6c,
    ),
    "SERVE": Experiment(
        id="SERVE",
        paper_artifact="Extension (service layer)",
        claim="Batched multi-source engine serves >=3x the query throughput of a per-query fused loop",
        run=lambda suite=None, **kw: service_throughput_series(suite_workloads(suite), **kw),
        render=render_service_throughput,
    ),
    "DYN": Experiment(
        id="DYN",
        paper_artifact="Extension (dynamic graphs)",
        claim="Incremental repair beats full recompute >=2x for small (<=1% of edges) update batches",
        run=lambda suite=None, **kw: mutation_repair_series(suite=suite, **kw),
        render=render_mutation_repair,
    ),
    "STEP": Experiment(
        id="STEP",
        paper_artifact="Extension (stepping portfolio)",
        claim="No stepper dominates across graph families; the auto-tuner's pick is within 10% of the best measured per graph",
        run=lambda suite=None, **kw: stepping_portfolio_series(suite_workloads(suite), **kw),
        render=render_stepping_portfolio,
    ),
    "SHARD": Experiment(
        id="SHARD",
        paper_artifact="Extension (sharded execution)",
        claim="The partition-parallel sharded stepper is bit-identical to Dijkstra on every (partitioner, shard-count) configuration, with speedup and communication volume reported per partitioner",
        run=lambda suite=None, **kw: sharded_scaling_series(suite_workloads(suite), **kw),
        render=render_sharded_scaling,
    ),
}


def run_experiment(exp_id: str, suite: str | None = None, **kwargs) -> str:
    """Run one experiment end-to-end and return its rendered panel."""
    exp = EXPERIMENTS[exp_id.upper()]
    rows = exp.run(suite=suite, **kwargs)
    if exp_id.upper() == "FIG4":
        return render_fig4(rows, simulate=kwargs.get("simulate", True))
    return exp.render(rows)

"""The STEP experiment: the stepping portfolio raced across graph families.

For each suite graph, every candidate stepper (classic Δ included) solves
from the canonical workload source.  All answers are verified
bit-identical to Dijkstra before timing — the portfolio is a set of
schedules over the *same* min-plus fixed point, so equality is exact.
Then the auto-tuner probes the same source and its pick is compared
against the best measured stepper; the acceptance claim is that the pick
lands within 10% of the best per graph family.

What the table shows (and why the subsystem exists): no column wins
everywhere.  Road meshes punish wide windows, power-law graphs punish
narrow ones, tiny-diameter graphs hand the win to plain Bellman–Ford —
the per-graph pick is the point.
"""

from __future__ import annotations

import numpy as np

from ..sssp.reference import dijkstra
from ..stepping import DEFAULT_CANDIDATES, AutoTuner, resolve_stepper_spec
from .reporting import format_table, geometric_mean
from .timing import time_callable
from .workloads import Workload, suite_workloads

__all__ = ["stepping_portfolio_series", "render_stepping_portfolio"]


def stepping_portfolio_series(
    workloads: list[Workload] | None = None,
    steppers: tuple[str, ...] | None = None,
    repeats: int = 3,
    verify: bool = True,
) -> list[dict]:
    """Per-(graph, stepper) timings plus the tuner's per-graph pick.

    Every row carries the tuner pick for its graph (``picked`` marks the
    row the tuner chose; ``vs_best`` is the row's slowdown over the best
    measured row), so the render can check the pick quality without
    re-deriving group structure.
    """
    workloads = workloads if workloads is not None else suite_workloads()
    steppers = tuple(steppers) if steppers is not None else DEFAULT_CANDIDATES
    rows: list[dict] = []
    for wl in workloads:
        oracle = dijkstra(wl.graph, wl.source).distances if verify else None
        timings: dict[str, float] = {}
        for name in steppers:
            s, params = resolve_stepper_spec(name)
            if verify:
                r = s.solve(wl.graph, wl.source, **params)
                assert np.array_equal(r.distances, oracle), (
                    f"{wl.name}: stepper {name} differs from Dijkstra"
                )
            stats = time_callable(
                lambda: s.solve(wl.graph, wl.source, **params), repeats=repeats
            )
            timings[name] = stats.best_ms
        # the tuner probes the same source under the same repeat budget,
        # so pick and measurement see the same conditions
        tuner = AutoTuner(candidates=steppers, repeats=repeats)
        pick = tuner.probe(wl.graph, sources=(wl.source,)).best
        best_ms = min(timings.values())
        for name in steppers:
            rows.append(
                {
                    "graph": wl.name,
                    "family": wl.graph.meta.get("family", "?"),
                    "nodes": wl.num_vertices,
                    "stepper": name,
                    "ms": timings[name],
                    "vs_best": timings[name] / best_ms if best_ms > 0 else 1.0,
                    "picked": "*" if name == pick else "",
                }
            )
    return rows


def render_stepping_portfolio(rows: list[dict]) -> str:
    """The STEP panel: portfolio table + tuner-pick-quality headline."""
    table = format_table(
        rows,
        columns=["graph", "family", "nodes", "stepper", "ms", "vs_best", "picked"],
        floatfmt=".3f",
    )
    # pick quality: per graph, the picked row's slowdown over the best
    pick_ratios: dict[str, float] = {}
    for r in rows:
        if r["picked"]:
            pick_ratios[r["graph"]] = r["vs_best"]
    worst = max(pick_ratios.values(), default=1.0)
    gmean = geometric_mean(pick_ratios.values()) if pick_ratios else 1.0
    within = sum(1 for v in pick_ratios.values() if v <= 1.10)
    verdict = "PASS" if worst <= 1.10 else "MISS"
    return (
        "STEP — Stepping-algorithm portfolio (all verified bit-identical to "
        "Dijkstra) + auto-tuner pick quality\n\n"
        f"{table}\n\n"
        f"Auto-tuner pick vs best measured: within 10% on "
        f"{within}/{len(pick_ratios)} graphs "
        f"(worst {worst:.2f}x, geometric mean {gmean:.2f}x) [{verdict}]\n"
    )

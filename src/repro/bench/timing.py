"""Timing primitives for the benchmark harness.

The paper timed with the RDTSC instruction; the portable equivalent is
``time.perf_counter_ns``.  Protocol: warmup runs (excluded), then repeat
runs; the *minimum* is the headline number (least noise on a shared
machine) with median/mean retained for dispersion reporting.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["TimingStats", "time_callable"]


@dataclass(frozen=True)
class TimingStats:
    """Wall-clock statistics over the repeat runs, in seconds."""

    best: float
    median: float
    mean: float
    repeats: int

    @property
    def best_ms(self) -> float:
        return self.best * 1e3

    @property
    def median_ms(self) -> float:
        return self.median * 1e3

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimingStats<best={self.best_ms:.3f}ms over {self.repeats} runs>"


def time_callable(
    fn: Callable[[], object],
    repeats: int = 3,
    warmup: int = 1,
    min_total_seconds: float = 0.0,
) -> TimingStats:
    """Measure *fn* with warmup; auto-extends repeats for tiny workloads.

    ``min_total_seconds`` keeps sub-millisecond measurements honest by
    repeating until the accumulated measured time passes the floor.
    """
    for _ in range(warmup):
        fn()
    samples: list[float] = []
    total = 0.0
    runs = 0
    while runs < repeats or total < min_total_seconds:
        t0 = time.perf_counter_ns()
        fn()
        dt = (time.perf_counter_ns() - t0) / 1e9
        samples.append(dt)
        total += dt
        runs += 1
        if runs >= 1000:  # hard cap against pathological floors
            break
    return TimingStats(
        best=min(samples),
        median=statistics.median(samples),
        mean=statistics.fmean(samples),
        repeats=len(samples),
    )

"""The SERVE experiment: batched query throughput vs a naive query loop.

For each suite graph, a fixed workload of one-to-many queries (distinct
sources, deterministic seed) is answered two ways:

- **loop** — the pre-service architecture: one
  :func:`repro.sssp.fused.fused_delta_stepping` run per query;
- **service** — a cold :class:`repro.service.QueryService` that coalesces
  the whole workload into batch-engine solves
  (:func:`repro.service.batch.batch_delta_stepping`).

Both sides answer exactly the same queries; the batch answers are
verified bit-identical to per-source Dijkstra before timing (the batch
engine replays the same ``d[u] + w`` additions along the same shortest
paths, so on the unit-weight suite equality is exact, not approximate).
The headline is the suite-level throughput ratio.
"""

from __future__ import annotations

import numpy as np

from ..service import Query, QueryService
from ..sssp.fused import fused_delta_stepping
from ..sssp.reference import dijkstra
from .reporting import format_table, geometric_mean
from .timing import time_callable
from .workloads import Workload, suite_workloads

__all__ = ["service_throughput_series", "render_service_throughput"]


def _workload_sources(wl: Workload, num_queries: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    n = wl.graph.num_vertices
    return rng.choice(n, size=min(num_queries, n), replace=False)


def service_throughput_series(
    workloads: list[Workload] | None = None,
    num_queries: int = 64,
    repeats: int = 3,
    seed: int = 7,
    verify: bool = True,
    stepper: str | None = None,
    autotune: bool = False,
) -> list[dict]:
    """Per-graph loop-vs-service timings for the query workload.

    ``stepper`` pins the service's exact solves to one stepping-registry
    algorithm; ``autotune`` lets the per-graph tuner pick instead (the
    probe cost is paid inside the timed service run, as it would be in
    production).
    """
    workloads = workloads if workloads is not None else suite_workloads()
    rows = []
    for wl in workloads:
        sources = _workload_sources(wl, num_queries, seed)

        def make_service():
            return QueryService(
                wl.graph, delta=wl.delta, stepper=stepper, autotune=autotune
            )

        if verify:
            svc = make_service()
            for s in sources:
                svc.submit(Query(source=int(s)))
            responses = svc.drain()
            for s, resp in zip(sources, responses):
                oracle = dijkstra(wl.graph, int(s)).distances
                assert np.array_equal(resp.distances, oracle), (
                    f"{wl.name}: batch source {s} differs from Dijkstra"
                )

        def run_loop():
            for s in sources:
                fused_delta_stepping(wl.graph, int(s), wl.delta)

        def run_service():
            svc = make_service()  # cold cache each run
            for s in sources:
                svc.submit(Query(source=int(s)))
            svc.drain()

        loop = time_callable(run_loop, repeats=repeats)
        service = time_callable(run_service, repeats=repeats)
        q = len(sources)
        rows.append(
            {
                "graph": wl.name,
                "nodes": wl.num_vertices,
                "queries": q,
                "loop_ms": loop.best_ms,
                "service_ms": service.best_ms,
                "loop_qps": q / loop.best,
                "service_qps": q / service.best,
                "speedup": loop.best / service.best,
            }
        )
    return rows


def render_service_throughput(rows: list[dict]) -> str:
    """The SERVE panel: per-graph table + suite-level throughput headline."""
    table = format_table(
        rows,
        columns=[
            "graph", "nodes", "queries",
            "loop_ms", "service_ms", "loop_qps", "service_qps", "speedup",
        ],
    )
    total_q = sum(r["queries"] for r in rows)
    total_loop = sum(r["loop_ms"] for r in rows) / 1e3
    total_service = sum(r["service_ms"] for r in rows) / 1e3
    gmean = geometric_mean(r["speedup"] for r in rows)
    return (
        "SERVE — Batched query service vs per-query fused loop "
        f"({total_q} queries, verified bit-identical to Dijkstra)\n\n"
        f"{table}\n\n"
        f"Workload throughput: {total_q / total_loop:.0f} qps loop -> "
        f"{total_q / total_service:.0f} qps service "
        f"({total_loop / total_service:.2f}x; per-graph geometric mean {gmean:.2f}x)\n"
    )

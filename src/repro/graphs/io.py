"""Graph file IO: SNAP edge lists and MatrixMarket coordinate files.

These are the on-disk formats of the paper's dataset sources (SNAP
publishes ``.txt`` edge lists; GraphChallenge publishes ``.mmio``/``.mtx``
MatrixMarket).  Both readers accept the real files, so downloaded datasets
drop straight into the benchmark suite; the writers let tests round-trip.
"""

from __future__ import annotations

import gzip
from pathlib import Path

import numpy as np

from .graph import Graph

__all__ = [
    "read_snap_edgelist",
    "write_snap_edgelist",
    "read_matrix_market",
    "write_matrix_market",
]


def _open_maybe_gz(path, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_snap_edgelist(
    path,
    directed: bool = False,
    name: str | None = None,
    relabel: bool = True,
) -> Graph:
    """Read a SNAP-style edge list.

    Format: ``#``-prefixed comment lines, then one edge per line as
    ``src dst [weight]`` separated by whitespace.  Vertex ids are arbitrary
    non-negative integers; ``relabel=True`` compacts them to ``0..n-1``
    (SNAP ids are often sparse).
    """
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    wgts: list[np.ndarray] = []
    with _open_maybe_gz(path, "r") as fh:
        rows = [
            line.split()
            for line in fh
            if line.strip() and not line.lstrip().startswith(("#", "%"))
        ]
    if not rows:
        return Graph.empty(0, name=name or str(path))
    ncol = len(rows[0])
    arr = np.array(
        [r[:3] if ncol >= 3 else r[:2] for r in rows], dtype=np.float64
    )
    src = arr[:, 0].astype(np.int64)
    dst = arr[:, 1].astype(np.int64)
    w = arr[:, 2] if arr.shape[1] >= 3 else None
    if relabel:
        uniq, inv = np.unique(np.concatenate([src, dst]), return_inverse=True)
        src = inv[: len(src)].astype(np.int64)
        dst = inv[len(src) :].astype(np.int64)
        n = len(uniq)
    else:
        n = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    return Graph.from_edges(
        src, dst, w, n=n, name=name or Path(path).stem, directed=directed
    )


def write_snap_edgelist(g: Graph, path, header: bool = True) -> None:
    """Write a SNAP-style edge list (weights included when non-unit).

    Undirected graphs emit each edge once in canonical (low, high) order.
    """
    src, dst, w = g.to_edges()
    if not g.directed:
        keep = src <= dst
        src, dst, w = src[keep], dst[keep], w[keep]
    unit = bool(np.all(w == 1.0)) if len(w) else True
    with _open_maybe_gz(path, "w") as fh:
        if header:
            kind = "directed" if g.directed else "undirected"
            fh.write(f"# {g.name}: {kind}, |V|={g.num_vertices}, edges={len(src)}\n")
            fh.write("# FromNodeId\tToNodeId" + ("" if unit else "\tWeight") + "\n")
        if unit:
            for s, d in zip(src, dst):
                fh.write(f"{s}\t{d}\n")
        else:
            for s, d, x in zip(src, dst, w):
                fh.write(f"{s}\t{d}\t{x:.17g}\n")


def read_matrix_market(path, name: str | None = None) -> Graph:
    """Read a MatrixMarket coordinate file as a graph.

    Supports ``matrix coordinate (real|integer|pattern)
    (general|symmetric)``; symmetric files are expanded to both
    orientations.  1-based indices per the format.
    """
    with _open_maybe_gz(path, "r") as fh:
        header = fh.readline().strip().lower().split()
        if len(header) < 4 or header[0] != "%%matrixmarket" or header[1] != "matrix":
            raise ValueError(f"not a MatrixMarket coordinate file: {path}")
        if header[2] != "coordinate":
            raise ValueError("only coordinate (sparse) MatrixMarket supported")
        field = header[3]
        symmetry = header[4] if len(header) > 4 else "general"
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        nrows, ncols, nnz = (int(tok) for tok in line.split()[:3])
        if nrows != ncols:
            raise ValueError("adjacency MatrixMarket must be square")
        body = fh.read().split()
    per = 2 if field == "pattern" else 3
    data = np.array(body, dtype=np.float64).reshape(nnz, per) if nnz else np.empty((0, per))
    src = data[:, 0].astype(np.int64) - 1
    dst = data[:, 1].astype(np.int64) - 1
    w = data[:, 2] if per == 3 else None
    directed = symmetry == "general"
    return Graph.from_edges(
        src, dst, w, n=nrows, name=name or Path(path).stem, directed=directed
    )


def write_matrix_market(g: Graph, path) -> None:
    """Write the adjacency as MatrixMarket coordinate real.

    Undirected graphs are emitted with ``symmetric`` storage (lower
    triangle), matching GraphChallenge conventions.
    """
    src, dst, w = g.to_edges()
    symmetric = not g.directed
    if symmetric:
        keep = src >= dst
        src, dst, w = src[keep], dst[keep], w[keep]
    with _open_maybe_gz(path, "w") as fh:
        sym = "symmetric" if symmetric else "general"
        fh.write(f"%%MatrixMarket matrix coordinate real {sym}\n")
        fh.write(f"% {g.name}\n")
        n = g.num_vertices
        fh.write(f"{n} {n} {len(src)}\n")
        for s, d, x in zip(src, dst, w):
            fh.write(f"{s + 1} {d + 1} {x:.17g}\n")

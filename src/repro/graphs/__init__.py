"""Graph substrate: container, generators, datasets, IO, statistics.

The evaluation in the paper runs on symmetric, undirected, unit-weight
graphs from SNAP and the GraphChallenge; this package provides the
:class:`Graph` container those flow through, synthetic stand-ins for the
dataset families (no network access here — see
:mod:`repro.graphs.datasets`), loaders for the real file formats, and the
summary statistics the figures are sorted by.
"""

from .graph import Graph
from .generators import (
    erdos_renyi,
    barabasi_albert,
    watts_strogatz,
    rmat,
    grid_2d,
    road_network,
    path_graph,
    star_graph,
    complete_graph,
    cycle_graph,
)
from .weights import assign_weights, unit_weights
from .datasets import load, catalog, DatasetSpec
from .io import (
    read_snap_edgelist,
    write_snap_edgelist,
    read_matrix_market,
    write_matrix_market,
)
from .stats import graph_stats, GraphStats
from .validation import validate_graph

__all__ = [
    "Graph",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "rmat",
    "grid_2d",
    "road_network",
    "path_graph",
    "star_graph",
    "complete_graph",
    "cycle_graph",
    "assign_weights",
    "unit_weights",
    "load",
    "catalog",
    "DatasetSpec",
    "read_snap_edgelist",
    "write_snap_edgelist",
    "read_matrix_market",
    "write_matrix_market",
    "graph_stats",
    "GraphStats",
    "validate_graph",
]

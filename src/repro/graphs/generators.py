"""Synthetic graph generators (the dataset substitute — see DESIGN.md §2).

The paper evaluates on SNAP / GraphChallenge graphs: symmetric, undirected,
unit weights, node counts spanning several orders of magnitude.  Without
network access we regenerate that structural spread synthetically:

- :func:`rmat` — Kronecker/R-MAT power-law graphs (the GraphChallenge and
  Graph500 family; good stand-in for social/web SNAP sets);
- :func:`barabasi_albert` — preferential attachment (collaboration nets);
- :func:`erdos_renyi` — uniform random (control family);
- :func:`watts_strogatz` — small-world (mesh+shortcut family);
- :func:`grid_2d` / :func:`road_network` — planar meshes (roadNet family,
  the high-diameter end that stresses delta-stepping's bucket count);
- deterministic micro-graphs (path/star/cycle/complete) for tests.

All generators take a ``seed`` and are fully deterministic; all return
:class:`~repro.graphs.graph.Graph` with unit weights (reweight with
:func:`repro.graphs.weights.assign_weights`).
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "rmat",
    "grid_2d",
    "road_network",
    "path_graph",
    "star_graph",
    "complete_graph",
    "cycle_graph",
]


def erdos_renyi(n: int, avg_degree: float = 8.0, seed: int = 0, directed: bool = False, name: str | None = None) -> Graph:
    """G(n, m) uniform random graph with ``m ≈ n·avg_degree/2`` edges.

    Samples endpoint pairs with replacement and relies on
    :meth:`Graph.from_edges` dedupe — for the sparse regimes used here the
    collision loss is negligible and the construction is O(m).
    """
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree / (1 if directed else 2))
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    return Graph.from_edges(
        src, dst, n=n, name=name or f"er-{n}", directed=directed
    )


def barabasi_albert(n: int, m_per_node: int = 4, seed: int = 0, name: str | None = None) -> Graph:
    """Preferential-attachment power-law graph (undirected).

    Vectorized variant of the classic repeated-endpoints construction:
    each new vertex attaches to ``m_per_node`` endpoints sampled from the
    current edge-endpoint multiset (degree-proportional), processed in
    batches to keep the Python-level loop short.
    """
    if n <= m_per_node:
        return complete_graph(n, name=name or f"ba-{n}")
    rng = np.random.default_rng(seed)
    # seed clique of m_per_node+1 vertices
    seed_n = m_per_node + 1
    seed_src, seed_dst = np.triu_indices(seed_n, k=1)
    endpoints = np.concatenate([seed_src, seed_dst]).astype(np.int64)
    srcs = [seed_src.astype(np.int64)]
    dsts = [seed_dst.astype(np.int64)]
    batch = max(256, n // 64)
    v = seed_n
    while v < n:
        hi = min(v + batch, n)
        count = hi - v
        new_src = np.repeat(np.arange(v, hi, dtype=np.int64), m_per_node)
        # sample targets from the endpoint multiset as of the batch start;
        # clip to vertices that already exist for each new vertex
        targets = endpoints[rng.integers(0, len(endpoints), size=count * m_per_node)]
        exists = targets < new_src  # only attach to older vertices
        # re-sample failures uniformly among older vertices (rare)
        bad = ~exists
        if bad.any():
            targets[bad] = rng.integers(0, v, size=int(bad.sum()))
        srcs.append(new_src)
        dsts.append(targets)
        endpoints = np.concatenate([endpoints, new_src, targets])
        v = hi
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    return Graph.from_edges(src, dst, n=n, name=name or f"ba-{n}", directed=False)


def watts_strogatz(n: int, k: int = 6, beta: float = 0.1, seed: int = 0, name: str | None = None) -> Graph:
    """Small-world ring lattice with rewiring probability *beta*."""
    if k % 2:
        k += 1
    rng = np.random.default_rng(seed)
    base = np.arange(n, dtype=np.int64)
    srcs = []
    dsts = []
    for off in range(1, k // 2 + 1):
        srcs.append(base)
        dsts.append((base + off) % n)
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    rewire = rng.random(len(dst)) < beta
    dst = dst.copy()
    dst[rewire] = rng.integers(0, n, size=int(rewire.sum()))
    return Graph.from_edges(src, dst, n=n, name=name or f"ws-{n}", directed=False)


def rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    directed: bool = False,
    name: str | None = None,
) -> Graph:
    """R-MAT / stochastic-Kronecker graph: ``2**scale`` vertices.

    The Graph500/GraphChallenge generator: each edge picks one quadrant of
    the adjacency matrix per bit, biased by ``(a, b, c, d=1-a-b-c)``.
    Fully vectorized across edges and bits.
    """
    n = 1 << scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("rmat probabilities exceed 1")
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    p_right = b + d  # probability the column bit is 1
    p_down_given = np.array([c / (a + c) if a + c else 0.0, d / (b + d) if b + d else 0.0])
    for bit in range(scale):
        r_col = rng.random(m)
        col_bit = (r_col < p_right).astype(np.int64)
        r_row = rng.random(m)
        row_bit = (r_row < p_down_given[col_bit]).astype(np.int64)
        src = (src << 1) | row_bit
        dst = (dst << 1) | col_bit
    # permute vertex ids so degree is not correlated with id
    perm = rng.permutation(n).astype(np.int64)
    src, dst = perm[src], perm[dst]
    return Graph.from_edges(
        src, dst, n=n, name=name or f"rmat-{scale}", directed=directed
    )


def grid_2d(rows: int, cols: int, name: str | None = None) -> Graph:
    """4-connected ``rows × cols`` mesh (undirected, unit weights)."""
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right_src = ids[:, :-1].ravel()
    right_dst = ids[:, 1:].ravel()
    down_src = ids[:-1, :].ravel()
    down_dst = ids[1:, :].ravel()
    src = np.concatenate([right_src, down_src])
    dst = np.concatenate([right_dst, down_dst])
    return Graph.from_edges(
        src, dst, n=rows * cols, name=name or f"grid-{rows}x{cols}", directed=False
    )


def road_network(rows: int, cols: int, extra_prob: float = 0.05, drop_prob: float = 0.05, seed: int = 0, name: str | None = None) -> Graph:
    """Road-network stand-in: a 2-D mesh with diagonals added and edges
    removed at small probabilities (high diameter, near-planar — the
    roadNet-* family from SNAP)."""
    rng = np.random.default_rng(seed)
    base = grid_2d(rows, cols)
    src, dst, w = base.to_edges()
    # stored edges are symmetric; operate on the canonical orientation only
    fwd = src < dst
    src, dst = src[fwd], dst[fwd]
    keep = rng.random(len(src)) >= drop_prob
    src, dst = src[keep], dst[keep]
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    diag_src = ids[:-1, :-1].ravel()
    diag_dst = ids[1:, 1:].ravel()
    pick = rng.random(len(diag_src)) < extra_prob
    src = np.concatenate([src, diag_src[pick]])
    dst = np.concatenate([dst, diag_dst[pick]])
    return Graph.from_edges(
        src, dst, n=rows * cols, name=name or f"road-{rows}x{cols}", directed=False
    )


def path_graph(n: int, name: str | None = None) -> Graph:
    """0 — 1 — 2 — ... — n-1."""
    base = np.arange(n - 1, dtype=np.int64)
    return Graph.from_edges(base, base + 1, n=n, name=name or f"path-{n}", directed=False)


def star_graph(n: int, name: str | None = None) -> Graph:
    """Hub 0 connected to all other vertices."""
    others = np.arange(1, n, dtype=np.int64)
    hub = np.zeros(n - 1, dtype=np.int64)
    return Graph.from_edges(hub, others, n=n, name=name or f"star-{n}", directed=False)


def complete_graph(n: int, name: str | None = None) -> Graph:
    """Every unordered pair connected."""
    src, dst = np.triu_indices(n, k=1)
    return Graph.from_edges(
        src.astype(np.int64), dst.astype(np.int64), n=n, name=name or f"k{n}", directed=False
    )


def cycle_graph(n: int, name: str | None = None) -> Graph:
    """A single n-cycle."""
    base = np.arange(n, dtype=np.int64)
    return Graph.from_edges(base, (base + 1) % n, n=n, name=name or f"cycle-{n}", directed=False)

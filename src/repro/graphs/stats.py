"""Graph summary statistics (the numbers the paper's figures sort by).

Fig. 3 and Fig. 4 order their x-axes by ascending node count and overlay
node counts on a secondary axis; :func:`graph_stats` computes those plus
the structural quantities (degree distribution, component count,
effective diameter proxy) used in EXPERIMENTS.md to argue the synthetic
suite spans the same regimes as SNAP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Graph

__all__ = ["GraphStats", "graph_stats", "connected_components", "bfs_levels"]


@dataclass(frozen=True)
class GraphStats:
    """Summary numbers for one graph."""

    name: str
    num_vertices: int
    num_edges_stored: int
    num_edges_undirected: int
    avg_degree: float
    max_degree: int
    min_weight: float
    max_weight: float
    unit_weights: bool
    num_components: int
    largest_component: int
    bfs_eccentricity_from_0: int

    def as_row(self) -> dict:
        """Flat dict for tabular reports."""
        return {
            "graph": self.name,
            "|V|": self.num_vertices,
            "stored |E|": self.num_edges_stored,
            "deg_avg": round(self.avg_degree, 2),
            "deg_max": self.max_degree,
            "unit_w": self.unit_weights,
            "components": self.num_components,
            "ecc(0)": self.bfs_eccentricity_from_0,
        }


def bfs_levels(g: Graph, source: int = 0) -> np.ndarray:
    """BFS level of every vertex from *source* (-1 when unreachable).

    Frontier-at-a-time with NumPy set operations — O(|E|) total work.
    """
    n = g.num_vertices
    level = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return level
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    indptr, indices = g.indptr, g.indices
    while len(frontier):
        starts = indptr[frontier]
        ends = indptr[frontier + 1]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            break
        offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
        flat = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, lengths)
        nbrs = indices[flat]
        new = np.unique(nbrs[level[nbrs] < 0])
        if len(new) == 0:
            break
        depth += 1
        level[new] = depth
        frontier = new
    return level


def connected_components(g: Graph) -> np.ndarray:
    """Component label per vertex (treats edges as undirected)."""
    n = g.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    # ensure symmetric traversal even for directed storage
    sym = g if not g.directed else _symmetrized(g)
    comp = 0
    for start in range(n):
        if labels[start] >= 0:
            continue
        levels = bfs_levels(sym, start)
        members = np.nonzero((levels >= 0) & (labels < 0))[0]
        labels[members] = comp
        comp += 1
    return labels


def _symmetrized(g: Graph) -> Graph:
    src, dst, w = g.to_edges()
    return Graph.from_edges(
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        np.concatenate([w, w]),
        n=g.num_vertices,
        name=g.name,
        directed=True,
    )


def graph_stats(g: Graph) -> GraphStats:
    """Compute a :class:`GraphStats` summary (O(|V| + |E|) except components)."""
    deg = g.out_degree()
    labels = connected_components(g)
    sizes = np.bincount(labels) if len(labels) else np.array([0])
    levels = bfs_levels(g, 0) if g.num_vertices else np.array([-1])
    return GraphStats(
        name=g.name,
        num_vertices=g.num_vertices,
        num_edges_stored=g.num_edges,
        num_edges_undirected=g.num_edges // (1 if g.directed else 2),
        avg_degree=float(deg.mean()) if len(deg) else 0.0,
        max_degree=int(deg.max()) if len(deg) else 0,
        min_weight=g.min_weight,
        max_weight=g.max_weight,
        unit_weights=g.has_unit_weights(),
        num_components=int(labels.max() + 1) if len(labels) else 0,
        largest_component=int(sizes.max()) if len(sizes) else 0,
        bfs_eccentricity_from_0=int(levels.max()),
    )

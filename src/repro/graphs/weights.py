"""Edge-weight assignment.

The paper's evaluation uses unit weights (and Δ=1); the Δ-sweep ablation
(ABL-DELTA in DESIGN.md) needs real-valued weights.  Weights are derived
from a *hash of the canonical edge key*, not from a sequential RNG stream,
so that (a) an undirected edge gets the same weight in both stored
orientations and (b) the assignment is independent of edge storage order.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["unit_weights", "assign_weights", "hash_to_unit"]


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 mixing — deterministic avalanche hash on uint64 arrays."""
    x = x + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def hash_to_unit(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Map integer keys to uniform floats in [0, 1) deterministically."""
    with np.errstate(over="ignore"):
        mixed = _splitmix64(keys.astype(np.uint64) ^ np.uint64(seed * 0x9E3779B9 + 1))
    return (mixed >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def unit_weights(g: Graph) -> Graph:
    """Copy of *g* with every weight set to 1 (the paper's configuration)."""
    return g.with_weights(np.ones(g.num_edges, dtype=np.float64))


def assign_weights(
    g: Graph,
    distribution: str = "uniform",
    low: float = 0.0,
    high: float = 1.0,
    seed: int = 0,
    name: str | None = None,
) -> Graph:
    """Reweight *g* with hash-derived random weights.

    Parameters
    ----------
    distribution:
        ``"uniform"`` on ``[low, high)``; ``"integer"`` uniform integers in
        ``[max(low, 1), high]``; ``"exponential"`` with mean
        ``(low+high)/2``; ``"unit"`` for all-ones.
    seed:
        Stream selector — different seeds give independent weightings.

    Undirected symmetry: both orientations of an edge hash the same
    canonical key ``(min·n + max)``, so ``w(u,v) == w(v,u)`` always.
    """
    n = g.num_vertices
    src, dst, _ = g.to_edges()
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    u = hash_to_unit(lo * np.int64(n) + hi, seed=seed)
    if distribution == "unit":
        w = np.ones(len(u), dtype=np.float64)
    elif distribution == "uniform":
        w = low + u * (high - low)
    elif distribution == "integer":
        lo_i = max(int(low), 1)
        hi_i = max(int(high), lo_i)
        w = np.floor(u * (hi_i - lo_i + 1)) + lo_i
    elif distribution == "exponential":
        mean = max((low + high) / 2.0, 1e-12)
        # inverse-CDF on the hash-uniform; clamp away from u=1 for safety
        w = -mean * np.log1p(-np.minimum(u, 1.0 - 1e-16))
    else:
        raise ValueError(f"unknown distribution {distribution!r}")
    return g.with_weights(w, name=name or f"{g.name}-w{distribution}")

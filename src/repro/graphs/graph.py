"""The :class:`Graph` container: a weighted digraph in CSR form.

This is the boundary object between the dataset side (generators, file
loaders) and the algorithm side (SSSP implementations, GraphBLAS adjacency
matrices).  Internally it is exactly the CSR adjacency structure the paper
operates on — ``A[i, j] = w`` for an edge ``i → j`` of weight ``w`` — plus
cheap conversions:

- :meth:`Graph.to_matrix` → :class:`repro.graphblas.Matrix` (zero-copy);
- :meth:`Graph.csr` → raw ``(indptr, indices, weights)`` NumPy arrays for
  the fused/direct implementations;
- :meth:`Graph.from_edges` / :meth:`Graph.to_edges` ↔ COO edge lists.

Graphs are simple (no self-loops, duplicate edges combined by minimum
weight, matching shortest-path semantics) and may be directed or
undirected (undirected edges are stored symmetrically, as SNAP's
undirected datasets are).

The *canonical* CSR form — every row sorted by target, no duplicate
targets — is what :meth:`Graph.from_edges` produces and what binary-search
lookups (:meth:`Graph.edge_weight`, the mutation API in
:mod:`repro.dynamic`) rely on.  Adopted structures
(:meth:`Graph.from_matrix`) are canonicalized on construction.

Mutation goes through :func:`repro.dynamic.apply_edge_updates`, which
keeps the CSR canonical and bumps :attr:`Graph.epoch` — the monotone
counter that caches (:class:`repro.service.cache.DistanceCache`) key on,
so a topology change invalidates every derived answer without manual
bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphblas.matrix import Matrix
from ..graphblas.sparseutil import INDEX_DTYPE

__all__ = ["Graph", "build_canonical_csr"]


def build_canonical_csr(src, dst, w, n: int, dedupe: bool = True):
    """COO triples → canonical CSR ``(indptr, indices, weights)``.

    Sorts by ``(src, dst)`` key and — with ``dedupe`` — min-combines
    duplicate edges, the container's semantics.  The one implementation
    behind :meth:`Graph.from_edges`, :meth:`Graph.canonicalize_rows`, and
    the mutation API's merge path.  ``dedupe=False`` skips the duplicate
    scan for inputs known unique (still sorts).
    """
    keys = np.asarray(src, dtype=np.int64) * np.int64(n) + dst
    w = np.asarray(w, dtype=np.float64)
    order = np.argsort(keys, kind="stable")
    keys, w = keys[order], w[order]
    if dedupe and len(keys):
        boundaries = np.empty(len(keys), dtype=bool)
        boundaries[0] = True
        np.not_equal(keys[1:], keys[:-1], out=boundaries[1:])
        starts = np.nonzero(boundaries)[0]
        if len(starts) != len(keys):
            w = np.minimum.reduceat(w, starts)
            keys = keys[starts]
    counts = np.bincount((keys // n).astype(INDEX_DTYPE), minlength=n).astype(INDEX_DTYPE)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(INDEX_DTYPE)
    return indptr, (keys % n).astype(INDEX_DTYPE), np.ascontiguousarray(w)


@dataclass
class Graph:
    """A weighted directed graph stored in CSR.

    Attributes
    ----------
    indptr, indices, weights:
        CSR arrays: the out-edges of vertex ``v`` are
        ``indices[indptr[v]:indptr[v+1]]`` with parallel ``weights``.
    name:
        Human-readable dataset name (used by the benchmark reports).
    meta:
        Free-form metadata (dataset family, provenance).  Keys starting
        with ``_`` are derived caches owned by other layers (e.g. the
        shard layer's partition views) and are dropped by :meth:`copy`
        and :meth:`with_weights` — they describe *this* object, not the
        graph's identity.
    directed:
        Whether the graph was built from directed edges.  Undirected
        graphs are stored with both orientations present.
    epoch:
        Mutation counter.  Starts at 0 and increases monotonically with
        every :func:`repro.dynamic.apply_edge_updates` batch; caches key
        derived answers on ``(id(graph), epoch)`` so stale entries miss
        automatically after a mutation.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    name: str = "graph"
    directed: bool = True
    meta: dict = field(default_factory=dict)
    epoch: int = 0

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        sources,
        targets,
        weights=None,
        n: int | None = None,
        name: str = "graph",
        directed: bool = True,
        remove_self_loops: bool = True,
    ) -> "Graph":
        """Build from parallel edge arrays.

        Duplicate edges keep the minimum weight; self-loops are dropped by
        default (the paper assumes simple graphs with an empty diagonal).
        Undirected input is symmetrized.
        """
        src = np.asarray(sources, dtype=INDEX_DTYPE).reshape(-1)
        dst = np.asarray(targets, dtype=INDEX_DTYPE).reshape(-1)
        if len(src) != len(dst):
            raise ValueError("sources and targets must have equal length")
        if weights is None:
            w = np.ones(len(src), dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64).reshape(-1)
            if len(w) != len(src):
                raise ValueError("weights length mismatch")
        if n is None:
            n = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
        if len(src) and (src.min() < 0 or dst.min() < 0 or src.max() >= n or dst.max() >= n):
            raise ValueError(f"edge endpoint out of range [0, {n})")
        if not directed:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
            w = np.concatenate([w, w])
        if remove_self_loops and len(src):
            keep = src != dst
            src, dst, w = src[keep], dst[keep], w[keep]
        # sort by (src, dst) and dedupe keeping the minimum weight
        indptr, indices, w = build_canonical_csr(src, dst, w, n)
        return cls(
            indptr=indptr,
            indices=indices,
            weights=w,
            name=name,
            directed=directed,
        )

    @classmethod
    def from_matrix(cls, A: Matrix, name: str = "graph", directed: bool = True) -> "Graph":
        """Adopt a GraphBLAS adjacency matrix (copies, canonicalized).

        Matrices built through the GraphBLAS layer may carry unsorted
        rows; the adopted CSR is canonicalized (rows sorted by target,
        duplicate targets min-combined) so binary-search edge lookups
        stay valid.
        """
        if A.nrows != A.ncols:
            raise ValueError("adjacency matrix must be square")
        return cls(
            indptr=A.indptr.copy(),
            indices=A.col_indices.copy(),
            weights=A.values.astype(np.float64, copy=True),
            name=name,
            directed=directed,
        ).canonicalize_rows()

    @classmethod
    def empty(cls, n: int, name: str = "empty") -> "Graph":
        """A graph with *n* vertices and no edges."""
        return cls(
            indptr=np.zeros(n + 1, dtype=INDEX_DTYPE),
            indices=np.empty(0, dtype=INDEX_DTYPE),
            weights=np.empty(0, dtype=np.float64),
            name=name,
        )

    # -- properties ----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Stored (directed) edge count; undirected edges count twice."""
        return len(self.indices)

    @property
    def n(self) -> int:
        """Alias of :attr:`num_vertices`."""
        return self.num_vertices

    @property
    def max_weight(self) -> float:
        return float(self.weights.max()) if len(self.weights) else 0.0

    @property
    def min_weight(self) -> float:
        return float(self.weights.min()) if len(self.weights) else 0.0

    def out_degree(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.indptr)

    def row_sources(self) -> np.ndarray:
        """Source vertex of every stored edge, in CSR order.

        The COO row index — ``to_edges`` minus the target/weight copies;
        the expansion every edge-parallel pass needs.
        """
        return np.repeat(
            np.arange(self.num_vertices, dtype=INDEX_DTYPE), np.diff(self.indptr)
        )

    def neighbors(self, v: int):
        """``(targets, weights)`` views of vertex *v*'s out-edges."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.indices[lo:hi], self.weights[lo:hi]

    def has_unit_weights(self) -> bool:
        """True when every edge weight equals 1 (the paper's datasets)."""
        return bool(np.all(self.weights == 1.0)) if len(self.weights) else True

    def edge_weight(self, u: int, v: int) -> float | None:
        """Weight of edge ``u → v``, or ``None`` when absent.

        A membership scan over the row, so it is correct even on rows
        that are not sorted (e.g. a hand-built CSR); duplicate targets
        resolve to the minimum weight, matching the container semantics.
        """
        nbrs, wts = self.neighbors(u)
        hits = nbrs == v
        if not hits.any():
            return None
        return float(wts[hits].min())

    def has_canonical_rows(self) -> bool:
        """True when every CSR row is strictly increasing (sorted, deduped)."""
        if self.num_edges < 2:
            return True
        increasing = self.indices[1:] > self.indices[:-1]
        # comparisons that straddle a row boundary carry no constraint
        starts = np.asarray(self.indptr[1:-1], dtype=np.int64)
        starts = starts[(starts > 0) & (starts < self.num_edges)]
        increasing[starts - 1] = True
        return bool(increasing.all())

    def canonicalize_rows(self) -> "Graph":
        """Sort every row by target and min-combine duplicates, in place.

        Returns ``self``.  No-op (and no copies) when the CSR is already
        canonical, so constructors can call it unconditionally.
        """
        if self.has_canonical_rows():
            return self
        self.indptr, self.indices, self.weights = build_canonical_csr(
            self.row_sources(), self.indices, self.weights, self.num_vertices
        )
        return self

    # -- conversions -----------------------------------------------------------

    def csr(self):
        """Raw CSR triple ``(indptr, indices, weights)`` (views, not copies)."""
        return self.indptr, self.indices, self.weights

    def to_matrix(self) -> Matrix:
        """The GraphBLAS adjacency matrix ``A`` (shares the CSR arrays)."""
        n = self.num_vertices
        return Matrix.from_csr(self.indptr, self.indices, self.weights, ncols=n)

    def to_edges(self):
        """COO export: ``(sources, targets, weights)``."""
        return self.row_sources(), self.indices.copy(), self.weights.copy()

    def reverse(self) -> "Graph":
        """The graph with every edge reversed (CSC of the adjacency)."""
        src, dst, w = self.to_edges()
        return Graph.from_edges(
            dst, src, w, n=self.num_vertices, name=f"{self.name}-rev", directed=self.directed
        )

    def _public_meta(self) -> dict:
        """Metadata minus the ``_``-prefixed derived caches (see class
        docstring) — what copies inherit."""
        return {k: v for k, v in self.meta.items() if not k.startswith("_")}

    def copy(self, name: str | None = None) -> "Graph":
        """Deep copy (fresh CSR arrays, same epoch)."""
        return Graph(
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            weights=self.weights.copy(),
            name=name or self.name,
            directed=self.directed,
            meta=self._public_meta(),
            epoch=self.epoch,
        )

    def with_weights(self, weights: np.ndarray, name: str | None = None) -> "Graph":
        """Copy of this graph with a different weight array."""
        w = np.asarray(weights, dtype=np.float64)
        if len(w) != self.num_edges:
            raise ValueError("weight array length must equal num_edges")
        return Graph(
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            weights=w.copy(),
            name=name or self.name,
            directed=self.directed,
            meta=self._public_meta(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "digraph" if self.directed else "graph"
        return (
            f"Graph<{self.name}: {kind}, |V|={self.num_vertices}, "
            f"stored edges={self.num_edges}>"
        )

"""Dataset catalog: synthetic stand-ins for the paper's SNAP/GraphChallenge suite.

The paper's evaluation (§VI.A) uses "real-world graphs collected by the
Stanford Network Analytics Platform (SNAP) and the GraphChallenge …
symmetric and undirected graphs with unit edge weights", spanning node
counts over several orders of magnitude (Fig. 3's secondary axis).  This
environment has no network access, so each catalog entry regenerates the
*family* of a named SNAP/GraphChallenge dataset — degree distribution and
scale — with a deterministic seeded generator (substitution documented in
DESIGN.md §2).  Real files, when available, can be loaded with
:mod:`repro.graphs.io` and used identically.

Suites
------
- ``paper_suite()`` — ten graphs in ascending node count; the x-axis of
  Fig. 3 / Fig. 4.
- ``ci_suite()`` — miniature versions for fast tests.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable

from . import generators as gen
from .graph import Graph
from .weights import assign_weights, unit_weights

__all__ = ["DatasetSpec", "catalog", "load", "paper_suite", "ci_suite", "suite_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """One catalog entry.

    Attributes
    ----------
    name:
        Catalog key.
    mimics:
        The real dataset this entry stands in for.
    family:
        Generator family (``rmat``, ``ba``, ``ws``, ``road``, ``er``).
    builder:
        Zero-argument callable producing the :class:`Graph`.
    description:
        Why this family matches the original's structure.
    """

    name: str
    mimics: str
    family: str
    builder: Callable[[], Graph] = field(compare=False)
    description: str = ""

    def build(self) -> Graph:
        g = self.builder()
        g.name = self.name
        g.meta.update({"mimics": self.mimics, "family": self.family})
        return g


def _spec(name, mimics, family, description, builder) -> DatasetSpec:
    return DatasetSpec(
        name=name, mimics=mimics, family=family, builder=builder, description=description
    )


_CATALOG: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _CATALOG[spec.name] = spec


# --- micro graphs (tests, docs) ---------------------------------------------

_register(_spec(
    "karate-club",
    "Zachary karate club (SNAP-adjacent classic)",
    "ws",
    "34-vertex small-world stand-in for the classic community graph.",
    lambda: gen.watts_strogatz(34, k=4, beta=0.3, seed=34),
))
_register(_spec(
    "dolphins",
    "dolphins social network",
    "ws",
    "62-vertex small-world graph.",
    lambda: gen.watts_strogatz(62, k=4, beta=0.2, seed=62),
))
_register(_spec(
    "grid-tiny",
    "toy mesh",
    "road",
    "16x16 4-connected mesh for unit tests.",
    lambda: gen.grid_2d(16, 16),
))

# --- the paper-scale suite (ascending |V|) -----------------------------------

_register(_spec(
    "facebook-sim",
    "ego-Facebook (SNAP; 4,039 nodes / 88,234 edges)",
    "ba",
    "Dense preferential-attachment graph: high average degree, tiny diameter.",
    lambda: gen.barabasi_albert(4039, m_per_node=22, seed=1),
))
_register(_spec(
    "ca-grqc-sim",
    "ca-GrQc collaboration (SNAP; 5,242 nodes / 14,496 edges)",
    "ba",
    "Sparse power-law collaboration-style graph.",
    lambda: gen.barabasi_albert(5242, m_per_node=3, seed=2),
))
_register(_spec(
    "wiki-vote-sim",
    "wiki-Vote (SNAP; 7,115 nodes / ~100k edges, symmetrized)",
    "rmat",
    "Skewed R-MAT graph with heavy-tailed degrees.",
    lambda: gen.rmat(13, edge_factor=12, seed=3),
))
_register(_spec(
    "roadgrid-small",
    "roadNet-* family (SNAP), small cut",
    "road",
    "Near-planar high-diameter mesh: stresses bucket count (many phases).",
    lambda: gen.road_network(100, 100, seed=4),
))
_register(_spec(
    "ca-hepph-sim",
    "ca-HepPh collaboration (SNAP; 12,008 nodes / 118,521 edges)",
    "ba",
    "Mid-size power-law collaboration-style graph.",
    lambda: gen.barabasi_albert(12008, m_per_node=10, seed=5),
))
_register(_spec(
    "email-enron-sim",
    "email-Enron (SNAP; 36,692 nodes / 183,831 edges)",
    "rmat",
    "Sparse skewed communication graph.",
    lambda: gen.rmat(15, edge_factor=6, seed=6),
))
_register(_spec(
    "roadgrid-medium",
    "roadNet-* family (SNAP), medium cut",
    "road",
    "32k-vertex mesh; the high-diameter end of the suite.",
    lambda: gen.road_network(180, 180, seed=7),
))
_register(_spec(
    "loc-brightkite-sim",
    "loc-Brightkite (SNAP; 58,228 nodes / 214,078 edges)",
    "ba",
    "Large sparse social graph.",
    lambda: gen.barabasi_albert(58228, m_per_node=4, seed=8),
))
_register(_spec(
    "slashdot-sim",
    "soc-Slashdot0811 (SNAP; 77,360 nodes / ~500k edges, symmetrized)",
    "rmat",
    "Largest suite member: skewed, half a million stored edges.",
    lambda: gen.rmat(16, edge_factor=8, seed=9),
))
_register(_spec(
    "amazon-sim",
    "com-Amazon (SNAP; 334,863 nodes) at reduced scale",
    "ws",
    "Product co-purchase style: locally clustered with long-range links.",
    lambda: gen.watts_strogatz(100_000, k=6, beta=0.05, seed=10),
))

# --- CI miniatures -------------------------------------------------------------

_register(_spec(
    "ci-ba", "miniature power-law", "ba",
    "600-vertex BA graph for fast test runs.",
    lambda: gen.barabasi_albert(600, m_per_node=4, seed=11),
))
_register(_spec(
    "ci-rmat", "miniature R-MAT", "rmat",
    "1,024-vertex R-MAT for fast test runs.",
    lambda: gen.rmat(10, edge_factor=8, seed=12),
))
_register(_spec(
    "ci-road", "miniature road mesh", "road",
    "30x30 perturbed mesh for fast test runs.",
    lambda: gen.road_network(30, 30, seed=13),
))
_register(_spec(
    "ci-ws", "miniature small-world", "ws",
    "500-vertex Watts-Strogatz for fast test runs.",
    lambda: gen.watts_strogatz(500, k=6, beta=0.1, seed=14),
))
_register(_spec(
    "ci-er", "miniature uniform random", "er",
    "800-vertex Erdős–Rényi for fast test runs.",
    lambda: gen.erdos_renyi(800, avg_degree=6.0, seed=15),
))


def catalog() -> dict[str, DatasetSpec]:
    """The full name → spec mapping (copy; registry is immutable)."""
    return dict(_CATALOG)


@functools.lru_cache(maxsize=32)
def _load_cached(name: str) -> Graph:
    try:
        spec = _CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(_CATALOG))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    return spec.build()


def load(name: str, weights: str = "unit", seed: int = 0) -> Graph:
    """Build (or fetch from cache) a catalog graph.

    Parameters
    ----------
    weights:
        ``"unit"`` (paper configuration) or a distribution name accepted by
        :func:`repro.graphs.weights.assign_weights`.
    """
    g = _load_cached(name)
    if weights == "unit":
        return unit_weights(g)
    return assign_weights(g, distribution=weights, low=0.05, high=1.0, seed=seed)


def paper_suite() -> list[str]:
    """Fig. 3 / Fig. 4 suite, ascending node count (the figures' x order)."""
    names = [
        "facebook-sim",
        "ca-grqc-sim",
        "wiki-vote-sim",
        "roadgrid-small",
        "ca-hepph-sim",
        "email-enron-sim",
        "roadgrid-medium",
        "loc-brightkite-sim",
        "slashdot-sim",
        "amazon-sim",
    ]
    return sorted(names, key=lambda n: _load_cached(n).num_vertices)


def ci_suite() -> list[str]:
    """Miniature suite for tests/CI, ascending node count."""
    names = ["ci-ba", "ci-rmat", "ci-road", "ci-ws", "ci-er"]
    return sorted(names, key=lambda n: _load_cached(n).num_vertices)


def suite_names(kind: str = "paper") -> list[str]:
    """Suite selector: ``"paper"`` or ``"ci"``."""
    if kind == "paper":
        return paper_suite()
    if kind == "ci":
        return ci_suite()
    raise ValueError(f"unknown suite {kind!r}")

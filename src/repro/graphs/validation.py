"""Structural validation of :class:`~repro.graphs.graph.Graph` objects.

Checks the CSR invariants every algorithm in this package assumes, plus
the simple-graph properties the paper requires (empty diagonal, symmetric
storage for undirected graphs).  Tests and the dataset loaders run these;
property-based tests assert generators always satisfy them.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["validate_graph", "GraphInvariantError"]


class GraphInvariantError(AssertionError):
    """A structural invariant of a Graph was violated."""


def _fail(msg: str):
    raise GraphInvariantError(msg)


def validate_graph(g: Graph, check_symmetry: bool | None = None) -> Graph:
    """Validate CSR and simple-graph invariants; returns *g* on success.

    Parameters
    ----------
    check_symmetry:
        Force (or skip) the symmetric-storage check; default checks
        exactly when ``g.directed`` is False.
    """
    n = g.num_vertices
    indptr, indices, weights = g.indptr, g.indices, g.weights

    if len(indptr) != n + 1:
        _fail(f"indptr length {len(indptr)} != n+1 = {n + 1}")
    if indptr[0] != 0:
        _fail("indptr[0] != 0")
    if indptr[-1] != len(indices):
        _fail(f"indptr[-1]={indptr[-1]} != nnz={len(indices)}")
    if len(indices) != len(weights):
        _fail("indices and weights length differ")
    if len(indptr) > 1 and np.any(np.diff(indptr) < 0):
        _fail("indptr not monotone")
    if len(indices):
        if indices.min() < 0 or indices.max() >= n:
            _fail("column index out of range")
        # sorted + unique within each row
        row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        keys = row_of * np.int64(n) + indices
        if np.any(keys[1:] <= keys[:-1]):
            _fail("columns not strictly sorted within rows")
        if np.any(row_of == indices):
            _fail("self-loop present (diagonal must be empty)")
        if not np.all(np.isfinite(weights)):
            _fail("non-finite edge weight")
        if np.any(weights < 0):
            _fail("negative edge weight (SSSP requires non-negative)")

    if check_symmetry is None:
        check_symmetry = not g.directed
    if check_symmetry and len(indices):
        src, dst, w = g.to_edges()
        fwd = set(zip(src.tolist(), dst.tolist()))
        for s, d in zip(src.tolist(), dst.tolist()):
            if (d, s) not in fwd:
                _fail(f"missing reverse edge for ({s}, {d}) in undirected graph")
        # weights must match across orientations
        key_fwd = {(s, d): x for s, d, x in zip(src.tolist(), dst.tolist(), w.tolist())}
        for (s, d), x in key_fwd.items():
            if key_fwd[(d, s)] != x:
                _fail(f"asymmetric weight on undirected edge ({s}, {d})")
    return g

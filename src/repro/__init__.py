"""repro — reproduction of "Delta-stepping SSSP: from Vertices and Edges to
GraphBLAS Implementations" (Sridhar et al., IPDPSW 2019).

Top-level surface:

- :mod:`repro.graphblas` — pure-Python/NumPy GraphBLAS (the substrate).
- :mod:`repro.ir` — the paper's vertex/edge→linear-algebra translation layer.
- :mod:`repro.graphs` — graph container, generators, datasets, IO.
- :mod:`repro.kernels` — the shared relaxation-kernel core: per-target
  min kernels (argsort / O(m) scatter-min), the reusable
  ``RelaxWorkspace`` arena, and the lazy ``BucketQueue``
  (``repro-sssp kernel-bench``).
- :mod:`repro.sssp` — the four delta-stepping implementations + baselines.
- :mod:`repro.stepping` — the generalized stepping-algorithm framework
  (ρ/radius/Δ* + registry + per-graph auto-tuner).
- :mod:`repro.shard` — graph partitioners + the partition-parallel
  sharded stepper with per-step frontier exchange
  (``repro-sssp shard-bench``).
- :mod:`repro.service` — the distance-query service layer: multi-source
  batch SSSP engine, LRU distance cache, ALT-style landmark bounds, and
  the coalescing query server (``repro-sssp query`` / ``serve-bench``).
- :mod:`repro.dynamic` — graph mutation batches + incremental SSSP
  repair (``repro-sssp mutate-bench``).
- :mod:`repro.parallel` — OpenMP-task-like runtime (threads + simulator).
- :mod:`repro.algorithms` — further algorithms built with the methodology.
- :mod:`repro.bench` — harness regenerating every figure in the paper.

Quickstart::

    import repro

    g = repro.datasets.load("roadgrid-small")
    result = repro.sssp.delta_stepping(g, source=0, delta=1.0)
    print(result.distances[:10])
"""

from .version import __version__

__all__ = [
    "__version__",
    "graphblas",
    "graphs",
    "datasets",
    "kernels",
    "sssp",
    "stepping",
    "shard",
    "service",
    "dynamic",
    "ir",
    "parallel",
    "algorithms",
    "bench",
]


def __getattr__(name):
    """Lazy subpackage loading so ``import repro`` stays light."""
    import importlib

    if name in {"graphblas", "graphs", "kernels", "sssp", "stepping", "shard", "service", "dynamic", "ir", "parallel", "algorithms", "bench"}:
        return importlib.import_module(f".{name}", __name__)
    if name == "datasets":
        return importlib.import_module(".graphs.datasets", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

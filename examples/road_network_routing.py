#!/usr/bin/env python
"""Road-network routing: the high-diameter regime delta-stepping targets.

Road networks are the workload Meyer & Sanders designed delta-stepping
for: enormous diameter (thousands of BFS levels), low degree, real-valued
edge lengths.  This example:

1. builds a weighted road-network stand-in (perturbed mesh, hash-derived
   edge lengths — see ``repro.graphs.weights``);
2. sweeps Δ to show the work/parallelism trade-off (§III / the ABL-DELTA
   ablation): small Δ ⇒ many buckets with tiny phases (Dijkstra-like),
   large Δ ⇒ few buckets with re-relaxation churn (Bellman-Ford-like);
3. reconstructs an actual shortest route from the distance array.

Run:  python examples/road_network_routing.py
"""

import numpy as np

from repro.graphs import generators
from repro.graphs.weights import assign_weights
from repro.sssp import delta_stepping, dijkstra, path_weight, reconstruct_path
from repro.sssp.delta import bellman_ford_equivalent_delta, choose_delta


def main() -> None:
    # ~90x90 city: 4-connected street grid, 5% diagonal shortcuts,
    # 5% closed streets, segment lengths in [0.05, 1.0) "km".
    base = generators.road_network(90, 90, extra_prob=0.05, drop_prob=0.05, seed=17)
    city = assign_weights(base, "uniform", low=0.05, high=1.0, seed=3)
    print(f"city: {city} (weights in [{city.min_weight:.2f}, {city.max_weight:.2f}])")

    source, target = 0, city.num_vertices - 1

    # -- delta sweep --------------------------------------------------------
    oracle = dijkstra(city, source)
    deltas = [0.05, 0.1, 0.25, 0.5, 1.0, bellman_ford_equivalent_delta(city)]
    print(f"\n{'delta':>10}  {'buckets':>8}  {'phases':>7}  {'relaxations':>12}")
    for delta in deltas:
        r = delta_stepping(city, source, delta, method="fused")
        assert r.same_distances(oracle)
        label = f"{delta:10.2f}" if delta < 1e4 else "  BF-like "
        print(f"{label}  {r.buckets_processed:8d}  {r.phases:7d}  {r.relaxations:12d}")
    print("(same distances every time — Δ only moves work between phases)")

    auto = choose_delta(city)
    print(f"\nauto-selected delta (Meyer-Sanders Θ(1/d̄) heuristic): {auto:.4f}")

    # -- route reconstruction (tight-edge walk; see repro.sssp.paths) -------
    result = delta_stepping(city, source, auto, method="fused")
    route = reconstruct_path(city, result, target)
    if route:
        assert np.isclose(path_weight(city, route), result.distances[target])
        print(f"\nshortest route {source} → {target}: "
              f"{result.distances[target]:.3f} km over {len(route) - 1} segments")
        head = " -> ".join(map(str, route[:8]))
        print(f"  {head} -> ... -> {route[-1]}")
    else:
        print(f"\ntarget {target} not reachable from {source} (street closures)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The paper's contribution, end to end: translate, lower, fuse, execute.

Walks the two-step methodology on the delta-stepping worked example:

1. the algorithm as *vertex/edge patterns* → linear-algebra IR
   (``repro.ir.patterns`` / ``repro.ir.translate``, Fig. 1 left);
2. IR → the unfused GraphBLAS call sequence (Fig. 2), printed;
3. the §VI.B fusion rewrites applied mechanically, with the call-count
   delta the paper attributes its 3.7x speedup to;
4. both programs executed on a real graph through the interpreter, and
   checked against Dijkstra.

Run:  python examples/translation_pipeline.py
"""

from repro import datasets
from repro.ir import (
    GrBCall,
    LoweredWhile,
    count_calls,
    delta_stepping_program,
    fuse_program,
    lower_program,
    run_delta_stepping_ir,
)
from repro.sssp import dijkstra


def show(calls, indent: int = 2) -> None:
    for c in calls:
        if isinstance(c, LoweredWhile):
            print(" " * indent + f"while nvals({c.cond_name}) != 0:")
            show(c.pre, indent + 4)
            print(" " * (indent + 2) + "... loop body ...")
            show(c.body, indent + 4)
        elif isinstance(c, GrBCall) and c.fn not in ("declare", "set_scalar"):
            fused = "  <-- fused" if c.fused_from else ""
            print(" " * indent + repr(c) + fused)


def main() -> None:
    # Step 1+2: the translated program, lowered to GraphBLAS calls.
    program = delta_stepping_program()
    lowered = lower_program(program)
    print("=== Unfused call sequence (the Fig. 2 structure) ===")
    show(lowered.calls)
    print(f"\nstatic GraphBLAS calls: {count_calls(lowered.calls)}")

    # Step 3: mechanical fusion (§VI.B).
    fused, report = fuse_program(lowered)
    print("\n=== After fusion rewrites ===")
    show(fused.calls)
    print(f"\nstatic calls: {report.calls_before} -> {report.calls_after}")
    print(f"  filter fusions (pred-apply + masked-identity -> select): {report.filters_fused}")
    print(f"  Hadamard+vxm fusions (masked temp elided):               {report.masked_vxm_fused}")

    # Step 4: execute both pipelines on a real graph.
    graph = datasets.load("ci-road")
    oracle = dijkstra(graph, 0)
    unfused_run = run_delta_stepping_ir(graph, 0, 1.0, fuse=False)
    fused_run = run_delta_stepping_ir(graph, 0, 1.0, fuse=True)
    assert unfused_run.same_distances(oracle)
    assert fused_run.same_distances(oracle)
    print(f"\n=== Execution on {graph.name} ({graph.num_vertices} vertices) ===")
    print(f"dynamic GraphBLAS calls, unfused: {unfused_run.extra['calls_executed']}")
    print(f"dynamic GraphBLAS calls, fused:   {fused_run.extra['calls_executed']}")
    print("distances identical to Dijkstra in both pipelines")
    print("\ncall mix (unfused):", unfused_run.extra["calls_by_fn"])


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Task-parallel delta-stepping: the paper's Fig. 4 experiment, hands-on.

Reproduces the §VI.C task decomposition on one graph and reports both
execution modes:

- the deterministic *simulated schedule* (measure every task serially,
  then compute the LPT makespan for N threads) — the host-independent
  view, and the default Fig. 4 instrument in this repo;
- *real threads* on your machine (GIL- and core-count-gated; see
  EXPERIMENTS.md for why CPython can't show OpenMP-like scaling here).

Also demonstrates the plateau the paper observes past 2 threads: the two
coarse A_L/A_H filter tasks bound that phase's parallelism no matter how
many workers you add.

Run:  python examples/parallel_scaling.py
"""

import time

from repro.bench.workloads import workload_for
from repro.sssp import dijkstra
from repro.sssp.fused import fused_delta_stepping
from repro.sssp.parallel import parallel_delta_stepping


def main() -> None:
    wl = workload_for("slashdot-sim")
    print(f"workload: {wl.graph} (source {wl.source}, delta {wl.delta})")
    oracle = dijkstra(wl.graph, wl.source)

    # -- simulated schedule -------------------------------------------------
    print("\nsimulated schedule (deterministic, host-independent):")
    print(f"{'threads':>8}  {'speedup':>8}  {'task batches':>12}")
    for threads in (1, 2, 4, 8):
        r = parallel_delta_stepping(
            wl.graph, wl.source, wl.delta, num_threads=threads, simulate=True
        )
        assert r.same_distances(oracle)
        print(f"{threads:>8}  {r.extra['simulated_speedup']:>7.2f}x"
              f"  {r.extra['task_batches']:>12}")
    print("(paper: 1.44x at 2 threads, 1.5x at 4 — note the same plateau:")
    print(" the two coarse matrix-filter tasks cap scaling past 2 threads)")

    # -- real threads ---------------------------------------------------------
    print("\nreal threads on this host (best of 3):")
    best_seq = min(
        _timed(lambda: fused_delta_stepping(wl.graph, wl.source, wl.delta))
        for _ in range(3)
    )
    print(f"{'threads':>8}  {'wall ms':>9}  {'vs sequential':>13}")
    print(f"{'(seq)':>8}  {best_seq * 1e3:>8.1f}  {'1.00x':>13}")
    for threads in (2, 4):
        best = min(
            _timed(
                lambda: parallel_delta_stepping(
                    wl.graph, wl.source, wl.delta, num_threads=threads
                )
            )
            for _ in range(3)
        )
        print(f"{threads:>8}  {best * 1e3:>8.1f}  {best_seq / best:>12.2f}x")


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: load a graph, run delta-stepping, inspect the result.

Covers the 90%-use-case surface in ~40 lines:

- pick a dataset from the catalog (synthetic SNAP stand-ins);
- run the fused delta-stepping solver (the fast one);
- cross-check against Dijkstra;
- peek at the work counters the paper's analysis is built on.

Run:  python examples/quickstart.py
"""

from repro import datasets
from repro.sssp import check_against_dijkstra, delta_stepping, dijkstra


def main() -> None:
    # Every catalog graph documents which real SNAP/GraphChallenge dataset
    # family it stands in for (no network access here — see DESIGN.md §2).
    graph = datasets.load("roadgrid-small")
    print(f"graph: {graph}")
    print(f"  mimics: {graph.meta.get('mimics')}")

    # The paper's configuration: unit weights, delta = 1.
    result = delta_stepping(graph, source=0, delta=1.0, method="fused")
    print(f"\nresult: {result}")
    print(f"  reached      {result.num_reached} / {graph.num_vertices} vertices")
    print(f"  buckets      {result.buckets_processed}")
    print(f"  phases       {result.phases}  (simultaneous light/heavy relaxations)")
    print(f"  relaxations  {result.relaxations}  (requests generated)")
    print(f"  updates      {result.updates}  (requests that improved a distance)")

    # Distances to a few vertices (inf = unreachable).
    for v in (0, 1, 250, 9_999):
        print(f"  distance to {v:>5}: {result.distance_to(v):g}")

    # Validate against the textbook oracle — raises on any mismatch.
    check_against_dijkstra(graph, result)
    oracle = dijkstra(graph, 0)
    print(f"\nvalidated: distances match Dijkstra exactly "
          f"(max |diff| = {result.max_abs_difference(oracle):g})")

    # Each implementation from the paper is one keyword away:
    for method in ("meyer-sanders", "graphblas", "capi", "fused", "parallel"):
        r = delta_stepping(graph, source=0, delta=1.0, method=method)
        assert r.same_distances(oracle)
    print("all five implementations agree")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Query service: serve distance queries with batching, caching, landmarks.

The service layer turns the single-source reproduction into a throughput
engine:

- K queued queries from distinct sources become ONE batched
  delta-stepping solve (shared light/heavy relaxation waves);
- repeat sources are answered from the LRU distance cache;
- an ALT-style landmark index supplies certified [lower, upper] bounds
  when an exact solve is not worth the latency.

Run:  python examples/query_service.py
"""

import numpy as np

from repro import datasets
from repro.service import LandmarkIndex, Query, QueryService, batch_delta_stepping
from repro.sssp import dijkstra


def main() -> None:
    graph = datasets.load("ci-ws")
    rng = np.random.default_rng(11)
    print(f"graph: {graph}")

    # --- the batch engine: K sources, one set of relaxation waves --------
    sources = rng.choice(graph.num_vertices, size=16, replace=False)
    batch = batch_delta_stepping(graph, sources)
    oracle = dijkstra(graph, int(sources[0])).distances
    assert np.array_equal(batch.distances[0], oracle)
    print(f"\nbatch engine: {batch}")
    print(f"  {batch.num_sources} sources solved in {batch.phases} shared waves "
          f"({batch.relaxations} relaxation requests)")
    print("  row 0 matches Dijkstra exactly")

    # --- the service: queue, coalesce, cache -----------------------------
    service = QueryService(graph)
    for s in sources:
        service.submit(Query(source=int(s), target=int((s + 7) % graph.num_vertices)))
    responses = service.drain()
    print(f"\nservice: {len(responses)} point queries answered in one drain")
    print(f"  first answer: d({responses[0].query.source} -> "
          f"{responses[0].query.target}) = {responses[0].distance:g}")

    # repeats hit the cache
    again = service.query(int(sources[0]), int((sources[0] + 7) % graph.num_vertices))
    print(f"  repeat query from cache: {again.from_cache} "
          f"({again.latency_ms:.3f} ms)")

    # --- landmark bounds for budget queries ------------------------------
    index = LandmarkIndex.build(graph, num_landmarks=4)
    s, t = int(sources[1]), int(sources[2])
    est = index.estimate(s, t)
    true = float(dijkstra(graph, s).distances[t])
    print(f"\nlandmarks: d({s} -> {t}) in [{est.lower:g}, {est.upper:g}], "
          f"true {true:g}")
    assert est.lower <= true <= est.upper

    stats = service.stats()
    print(f"\nservice stats: {stats.queries_served} served, "
          f"{stats.batches_solved} batch solves for {stats.sources_solved} sources, "
          f"cache hit rate {stats.cache.hit_rate:.0%}")


if __name__ == "__main__":
    main()

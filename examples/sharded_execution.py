#!/usr/bin/env python
"""Sharded execution: partition the graph, step per shard, exchange frontiers.

The sharded layer is the repo's rehearsal of a multi-machine deployment:

- a partitioner assigns every vertex an owner shard (cost-balanced over
  edge mass) and materializes per-shard CSR slices;
- the ``sharded`` stepper runs delta-stepping per shard under a global
  sliding window, exchanging boundary relaxations once per superstep
  (min-combine on delivery keeps the result bit-identical to Dijkstra);
- the exchange counts the entries and bytes a real wire would carry.

Run:  python examples/sharded_execution.py
"""

import numpy as np

from repro import datasets
from repro.shard import partition_graph
from repro.sssp import dijkstra
from repro.stepping import solve_with


def main() -> None:
    graph = datasets.load("ci-road")
    print(f"graph: {graph}")

    # --- partition quality, per partitioner ------------------------------
    print("\npartition quality (4 shards):")
    for name in ("contiguous", "bfs"):
        sg = partition_graph(graph, 4, name)
        sizes = ", ".join(str(s.num_edges) for s in sg.shards)
        print(f"  {name:11s} cut {sg.cut_fraction:6.1%}  "
              f"balance {sg.edge_balance():.2f}  edges/shard [{sizes}]")

    # --- a sharded solve, verified against Dijkstra ----------------------
    oracle = dijkstra(graph, 0).distances
    res = solve_with("sharded(shards=4, partitioner=bfs)", graph, 0)
    assert np.array_equal(res.distances, oracle)
    print(f"\nsharded solve: {res.extra['shards']} shards "
          f"({res.extra['partitioner']}), {res.buckets_processed} supersteps, "
          f"bit-identical to Dijkstra")
    print(f"  exchange: {res.extra['entries_posted']} posted -> "
          f"{res.extra['entries_carried']} carried -> "
          f"{res.extra['entries_applied']} applied "
          f"({res.extra['bytes_carried'] / 1024:.1f} KiB on the wire)")

    # --- thread transport: shard steps overlap for real ------------------
    threaded = solve_with("sharded", graph, 0, num_shards=4, transport="threads:4")
    assert np.array_equal(threaded.distances, oracle)
    print(f"  thread transport ({threaded.extra['transport']}): "
          f"same distances, same fixed point")


if __name__ == "__main__":
    main()

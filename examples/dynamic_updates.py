#!/usr/bin/env python
"""Dynamic updates: mutate a served graph and repair distances in place.

The dynamic layer (`repro.dynamic`) turns the frozen-graph service into a
living one:

- `apply_edge_updates` applies insert/delete/reweight batches, keeps the
  CSR canonical, and bumps `graph.epoch` — the counter the distance
  cache keys on, so stale answers miss automatically;
- `repair_sssp` patches a cached distance vector after a batch, seeding
  delta-stepping buckets from only the affected region, bit-identical to
  a full recompute;
- `QueryService.mutate` drives both: hot cache entries are repaired (not
  dropped), the landmark index goes stale and rebuilds lazily.

Run:  python examples/dynamic_updates.py
"""

import time

import numpy as np

from repro import datasets
from repro.dynamic import apply_edge_updates, repair_sssp
from repro.service import LandmarkIndex, QueryService
from repro.sssp import dijkstra
from repro.sssp.delta import choose_delta
from repro.sssp.fused import fused_delta_stepping


def main() -> None:
    graph = datasets.load("ci-road", weights="uniform")
    source = 0
    delta = choose_delta(graph)
    print(f"graph: {graph} (epoch {graph.epoch})")

    # --- the mutation API -------------------------------------------------
    d0 = fused_delta_stepping(graph, source, delta).distances
    u, v = 0, int(graph.indices[graph.indptr[0]])
    applied = apply_edge_updates(
        graph,
        reweights=[(u, v, float(graph.edge_weight(u, v)) * 4)],  # traffic jam
    )
    print(f"\nreweighted {u} <-> {v}: {applied} -> epoch {graph.epoch}")

    # --- incremental repair vs recompute ----------------------------------
    t0 = time.perf_counter()
    repaired = repair_sssp(graph, source, d0, applied, delta=delta)
    repair_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    recomputed = fused_delta_stepping(graph, source, delta).distances
    recompute_s = time.perf_counter() - t0
    assert np.array_equal(repaired.distances, recomputed)
    print(f"repair touched {repaired.affected} affected + {repaired.seeds} seeded "
          f"vertices of {graph.num_vertices} in {repaired.phases} phases")
    print(f"repair {repair_s * 1e3:.2f} ms vs recompute {recompute_s * 1e3:.2f} ms "
          f"({recompute_s / max(repair_s, 1e-9):.1f}x) — answers bit-identical")

    # --- the service keeps serving through mutations ----------------------
    service = QueryService(
        graph, weight_mode="uniform", landmarks=LandmarkIndex.build(graph, 3)
    )
    target = graph.num_vertices - 1
    first = service.query(source, target)
    print(f"\nservice: d({source} -> {target}) = {first.distance:g} "
          f"[{'cache' if first.from_cache else 'batch solve'}]")

    report = service.mutate(deletes=[(u, v)])  # road closure
    print(f"mutate: {report}")
    after = service.query(source, target)
    oracle = float(dijkstra(graph, source).distances[target])
    assert after.from_cache, "repaired entry should still be hot"
    assert after.distance == oracle
    print(f"after closure: d({source} -> {target}) = {after.distance:g} "
          f"[cache hit, repaired in place, matches Dijkstra]")

    assert service.landmarks.stale  # marked, not yet rebuilt: lazy policy
    service.landmarks.ensure_fresh()
    est = service.landmarks.estimate(source, target)
    print(f"landmarks rebuilt lazily ({service.landmarks.rebuilds} rebuild): "
          f"bounds [{est.lower:g}, {est.upper:g}]")

    stats = service.stats()
    print(f"\nservice stats: {stats.queries_served} served, "
          f"{stats.mutations_applied} mutation, "
          f"{stats.entries_repaired} cache entry repaired, "
          f"cache invalidations {stats.cache.invalidations} (epoch keying needs none)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Social-network analysis with the whole GraphBLAS toolbox.

The paper argues its translation patterns cover graph analytics beyond
SSSP; this example runs a small analytics pipeline — all on the same
pure-Python GraphBLAS substrate — over a power-law social graph:

- delta-stepping hop distances from a seed user (BFS-equivalent, §VII);
- degrees via matrix reduction (vertex-centric pattern);
- triangle count and 4-truss communities (the §II.C edge-centric
  pattern, ``S = AᵀA ∘ A``);
- connected components (min-label propagation).

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import datasets
from repro.algorithms import connected_components, ktruss, triangle_count
from repro.graphblas.monoid import PLUS_MONOID
from repro.sssp import delta_stepping


def main() -> None:
    social = datasets.load("facebook-sim")
    print(f"network: {social}")
    print(f"  mimics: {social.meta.get('mimics')}")

    # -- vertex-centric: degree distribution via per-row reduction ---------
    A = social.to_matrix()
    degrees = A.reduce_rows(PLUS_MONOID).to_dense(0).astype(int)
    top = np.argsort(degrees)[::-1][:5]
    print("\nmost-connected users (vertex-centric row reduction):")
    for u in top:
        print(f"  user {u:>5}: {degrees[u]} friends")

    # -- hop distances: delta-stepping at unit weights == BFS (§VII) -------
    seed = int(top[0])
    hops = delta_stepping(social, seed, 1.0, method="fused")
    reached = hops.reached()
    hist = np.bincount(hops.distances[reached].astype(int))
    print(f"\nhop distances from user {seed} (delta-stepping, Δ=1):")
    for h, count in enumerate(hist):
        print(f"  {h} hops: {count:>6} users  {'#' * (count * 40 // max(hist))}")
    print(f"  unreachable: {social.num_vertices - hops.num_reached}")

    # -- edge-centric: triangles and trusses (§II.C) ------------------------
    tri = triangle_count(social)
    print(f"\ntriangles (S = AᵀA ∘ A over PLUS_PAIR): {tri:,}")

    truss = ktruss(social, k=4)
    in_truss = np.unique(truss.row_ids_expanded())
    print(f"4-truss core: {truss.nvals // 2:,} edges over {len(in_truss):,} users "
          f"({100 * len(in_truss) / social.num_vertices:.1f}% of the network)")

    # -- components (min-label propagation over MIN_SECOND) ----------------
    labels = connected_components(social)
    sizes = np.bincount(labels)
    print(f"\nconnected components: {len(sizes)} "
          f"(largest = {sizes.max():,} users)")


if __name__ == "__main__":
    main()

"""FIG4 — Figure 4: task-based parallel speedup over sequential fused.

Paper claim: OpenMP task parallelism yields average speedups of 1.44×
with two threads and 1.5× with four, normalized to the fused sequential
implementation; gains plateau past two threads because the two coarse
matrix-filter tasks bound that phase's parallelism.

Real-thread timings are recorded for 1/2/4 workers; the deterministic
simulated schedule (host-independent — this is the headline Fig. 4
instrument, see EXPERIMENTS.md on CPython-GIL limits of the real mode)
is attached as ``extra_info``.

Run::

    pytest benchmarks/bench_fig4_task_parallel.py --benchmark-only
    python -m repro fig4 --suite paper          # simulated schedule
    python -m repro fig4 --suite paper --real   # wall-clock threads
"""

from __future__ import annotations

import pytest

from repro.sssp.fused import fused_delta_stepping
from repro.sssp.parallel import parallel_delta_stepping


def bench_sequential_fused_baseline(benchmark, workload):
    """The denominator of every Fig. 4 speedup."""
    benchmark.group = f"fig4:{workload.name}"
    benchmark.pedantic(
        lambda: fused_delta_stepping(workload.graph, workload.source, workload.delta),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("threads", [1, 2, 4])
def bench_parallel_threads(benchmark, workload, threads):
    """Real-thread task-parallel runs (1, 2, 4 workers)."""
    benchmark.group = f"fig4:{workload.name}"
    result = benchmark.pedantic(
        lambda: parallel_delta_stepping(
            workload.graph, workload.source, workload.delta, num_threads=threads
        ),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    sim = parallel_delta_stepping(
        workload.graph, workload.source, workload.delta, num_threads=threads, simulate=True
    )
    benchmark.extra_info["simulated_speedup"] = sim.extra["simulated_speedup"]
    assert result.num_reached == sim.num_reached


def bench_fig4_simulated_schedule(benchmark, workload):
    """The simulated-schedule speedups themselves (deterministic)."""
    benchmark.group = f"fig4:{workload.name}"

    def run():
        out = {}
        for t in (2, 4):
            r = parallel_delta_stepping(
                workload.graph, workload.source, workload.delta, num_threads=t, simulate=True
            )
            out[t] = r.extra["simulated_speedup"]
        return out

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["speedup_2t"] = speedups[2]
    benchmark.extra_info["speedup_4t"] = speedups[4]

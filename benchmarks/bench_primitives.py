"""ABL-PRIM — GraphBLAS primitive costs (why unfused composition hurts).

§V.B/§VI.B's root cause: every filter is two ``GrB_apply`` calls and
every step materializes a sparse temporary.  These micro-benchmarks
measure the primitives delta-stepping composes — apply, masked apply,
eWiseAdd, vxm — across operand sizes, quantifying the per-call overhead
the fused implementation amortizes away.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphblas import (
    FP64,
    IDENTITY,
    MIN,
    MIN_PLUS,
    Matrix,
    REPLACE,
    Vector,
    apply,
    ewise_add,
    vxm,
)
from repro.graphblas.unaryop import range_filter

SIZES = [1_000, 10_000, 100_000]


def _dense_vector(n: int, seed: int = 0) -> Vector:
    rng = np.random.default_rng(seed)
    return Vector.from_dense(rng.random(n))


def _random_matrix(n: int, nnz_per_row: int = 8, seed: int = 1) -> Matrix:
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n), nnz_per_row)
    cols = rng.integers(0, n, size=n * nnz_per_row)
    vals = rng.random(n * nnz_per_row)
    return Matrix.from_coo(rows, cols, vals, n, n)


@pytest.mark.parametrize("n", SIZES)
def bench_apply_predicate(benchmark, n):
    """First half of a filter: predicate apply."""
    benchmark.group = f"primitives:n={n}"
    v = _dense_vector(n)
    out = Vector.new(FP64, n)
    op = range_filter(0.25, 0.75)
    benchmark(lambda: apply(out, op, v))


@pytest.mark.parametrize("n", SIZES)
def bench_apply_masked_identity(benchmark, n):
    """Second half of a filter: masked identity apply with REPLACE."""
    benchmark.group = f"primitives:n={n}"
    v = _dense_vector(n)
    pred = Vector.new(FP64, n)
    apply(pred, range_filter(0.25, 0.75), v)
    out = Vector.new(FP64, n)
    benchmark(lambda: apply(out, IDENTITY, v, mask=pred, desc=REPLACE))


@pytest.mark.parametrize("n", SIZES)
def bench_ewise_add_min(benchmark, n):
    """The per-phase ``t = min(t, tReq)`` merge."""
    benchmark.group = f"primitives:n={n}"
    a = _dense_vector(n, seed=2)
    b = _dense_vector(n, seed=3)
    out = Vector.new(FP64, n)
    benchmark(lambda: ewise_add(out, MIN, a, b))


@pytest.mark.parametrize("n", SIZES)
def bench_vxm_min_plus(benchmark, n):
    """The relaxation kernel: vxm over (min, +), 10% dense frontier."""
    benchmark.group = f"primitives:n={n}"
    A = _random_matrix(n)
    rng = np.random.default_rng(4)
    idx = np.sort(rng.choice(n, size=max(1, n // 10), replace=False))
    frontier = Vector.from_coo(idx, rng.random(len(idx)), n)
    out = Vector.new(FP64, n)
    benchmark(lambda: vxm(out, MIN_PLUS, frontier, A, desc=REPLACE))


@pytest.mark.parametrize("n", SIZES)
def bench_fused_filter_equivalent(benchmark, n):
    """What the two-call filter costs as one dense NumPy pass (the fused
    floor the paper's direct C implementation approaches)."""
    benchmark.group = f"primitives:n={n}"
    rng = np.random.default_rng(5)
    t = rng.random(n)

    def run():
        mask = (t >= 0.25) & (t < 0.75)
        return t[mask]

    benchmark(run)

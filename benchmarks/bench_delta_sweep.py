"""ABL-DELTA — Δ-sweep ablation on weighted graphs (DESIGN.md §5).

The paper fixes Δ=1 on unit weights; this sweep exposes the classic
Meyer–Sanders trade-off on real-valued weights: small Δ ⇒ many buckets,
little work per phase (Dijkstra-like); large Δ ⇒ few buckets, re-relaxation
churn (Bellman–Ford-like).  Phases/relaxations land in ``extra_info`` so
the trade-off curve can be read off the benchmark JSON.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import workload_for
from repro.sssp import dijkstra
from repro.sssp.fused import fused_delta_stepping

DELTAS = [0.05, 0.1, 0.25, 0.5, 1.0, 4.0]
GRAPHS = ["ci-ba", "ci-road"]


@pytest.fixture(scope="module", params=GRAPHS)
def weighted_workload(request):
    """Suite graphs reweighted with hash-uniform weights in [0.05, 1)."""
    return workload_for(request.param, weights="uniform")


@pytest.mark.parametrize("delta", DELTAS)
def bench_delta_sweep(benchmark, weighted_workload, delta):
    wl = weighted_workload
    benchmark.group = f"delta-sweep:{wl.name}"
    result = benchmark.pedantic(
        lambda: fused_delta_stepping(wl.graph, wl.source, delta),
        rounds=3,
        iterations=1,
    )
    oracle = dijkstra(wl.graph, wl.source)
    assert result.same_distances(oracle), f"delta={delta} diverges"
    benchmark.extra_info["delta"] = delta
    benchmark.extra_info["buckets"] = result.buckets_processed
    benchmark.extra_info["phases"] = result.phases
    benchmark.extra_info["relaxations"] = result.relaxations

"""SEC6C — §VI.C text claim: A_L/A_H matrix filtering is 35-40% of the
sequential runtime.

Instruments the fused sequential implementation (with the matrix split
un-fused, matching the paper's task decomposition) and records the share
of wall-clock per operation group as ``extra_info``.

Run::

    pytest benchmarks/bench_profile_breakdown.py --benchmark-only
    python -m repro profile --suite paper
"""

from __future__ import annotations

from repro.bench.figures import SEC6C_GROUPS
from repro.sssp.fused import fused_delta_stepping
from repro.sssp.graphblas_sssp import graphblas_delta_stepping
from repro.obs.stage import StageTimer


def _shares(profile: dict, groups: dict) -> dict:
    timer = StageTimer()
    for k, v in profile.items():
        timer.add(k, v)
    merged = timer.merged(groups)
    total = sum(merged.values()) or 1.0
    return {k: 100.0 * v / total for k, v in merged.items()}


def bench_fused_instrumented(benchmark, workload):
    """Instrumented fused run; stage shares in extra_info."""
    benchmark.group = f"sec6c:{workload.name}"
    result = benchmark.pedantic(
        lambda: fused_delta_stepping(
            workload.graph,
            workload.source,
            workload.delta,
            fuse_matrix_split=False,
            instrument=True,
        ),
        rounds=3,
        iterations=1,
    )
    for k, v in _shares(result.profile, SEC6C_GROUPS["fused"]).items():
        benchmark.extra_info[f"{k}_pct"] = round(v, 1)


def bench_unfused_instrumented(benchmark, workload):
    """Same breakdown on the unfused GraphBLAS implementation."""
    benchmark.group = f"sec6c:{workload.name}"
    result = benchmark.pedantic(
        lambda: graphblas_delta_stepping(
            workload.graph, workload.source, workload.delta, instrument=True
        ),
        rounds=2,
        iterations=1,
    )
    for k, v in _shares(result.profile, SEC6C_GROUPS["unfused"]).items():
        benchmark.extra_info[f"{k}_pct"] = round(v, 1)

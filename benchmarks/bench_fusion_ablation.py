"""ABL-FUSE — which fusion buys what share of the Fig. 3 speedup.

The paper lists two fusions (§VI.B): (1) Hadamard + vector-matrix
multiply, (2) the tBi/S/t vector-operation triple.  Our fused
implementation exposes each as a toggle; this ablation benchmarks all
four combinations plus the IR-pipeline call counts, attributing the
unfused→fused gap.
"""

from __future__ import annotations

import pytest

from repro.sssp import dijkstra
from repro.sssp.fused import fused_delta_stepping

COMBOS = [
    ("none", dict(fuse_relax=False, fuse_matrix_split=False)),
    ("matrix-split", dict(fuse_relax=False, fuse_matrix_split=True)),
    ("relax", dict(fuse_relax=True, fuse_matrix_split=False)),
    ("all", dict(fuse_relax=True, fuse_matrix_split=True)),
]


@pytest.mark.parametrize("combo_name,flags", COMBOS, ids=[c[0] for c in COMBOS])
def bench_fusion_combo(benchmark, workload, combo_name, flags):
    benchmark.group = f"fusion-ablation:{workload.name}"
    result = benchmark.pedantic(
        lambda: fused_delta_stepping(workload.graph, workload.source, workload.delta, **flags),
        rounds=3,
        iterations=1,
    )
    oracle = dijkstra(workload.graph, workload.source)
    assert result.same_distances(oracle), f"{combo_name} diverges"
    benchmark.extra_info.update(flags)


def bench_ir_call_counts(benchmark, small_workload):
    """Static + dynamic GraphBLAS call counts, unfused vs fused IR."""
    from repro.ir import delta_stepping_program, fuse_program, lower_program, run_delta_stepping_ir

    wl = small_workload
    lowered = lower_program(delta_stepping_program())
    _, report = fuse_program(lowered)

    def run():
        return run_delta_stepping_ir(wl.graph, wl.source, wl.delta, fuse=True)

    benchmark.group = "fusion-ablation:ir"
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    unfused = run_delta_stepping_ir(wl.graph, wl.source, wl.delta, fuse=False)
    benchmark.extra_info["static_calls_unfused"] = report.calls_before
    benchmark.extra_info["static_calls_fused"] = report.calls_after
    benchmark.extra_info["dynamic_calls_unfused"] = unfused.extra["calls_executed"]
    benchmark.extra_info["dynamic_calls_fused"] = result.extra["calls_executed"]
    assert result.extra["calls_executed"] < unfused.extra["calls_executed"]

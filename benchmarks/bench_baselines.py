"""DIJK — §VII comparison: delta-stepping at Δ=1 versus classical baselines.

The paper notes that Δ=1 on unit weights makes delta-stepping analogous
to Dijkstra (each bucket is one distance level, processed like the
priority queue's minimum).  These benchmarks measure every implementation
plus Dijkstra and Bellman–Ford on the same workloads, and assert that all
produce identical distances.
"""

from __future__ import annotations

import pytest

from repro.sssp import METHODS, bellman_ford, dijkstra


@pytest.mark.parametrize("method", sorted(METHODS))
def bench_delta_stepping_method(benchmark, workload, method):
    """All five delta-stepping implementations on the suite."""
    benchmark.group = f"baselines:{workload.name}"
    fn = METHODS[method]
    result = benchmark.pedantic(
        lambda: fn(workload.graph, workload.source, workload.delta),
        rounds=1 if method in ("graphblas", "capi", "meyer-sanders") else 3,
        iterations=1,
    )
    oracle = dijkstra(workload.graph, workload.source)
    assert result.same_distances(oracle), f"{method} diverges from Dijkstra"


def bench_dijkstra(benchmark, workload):
    """The binary-heap oracle itself."""
    benchmark.group = f"baselines:{workload.name}"
    benchmark.pedantic(
        lambda: dijkstra(workload.graph, workload.source),
        rounds=3,
        iterations=1,
    )


def bench_bellman_ford(benchmark, workload):
    """Edge-centric label correcting (the Δ→∞ endpoint)."""
    benchmark.group = f"baselines:{workload.name}"
    result = benchmark.pedantic(
        lambda: bellman_ford(workload.graph, workload.source),
        rounds=3,
        iterations=1,
    )
    oracle = dijkstra(workload.graph, workload.source)
    assert result.same_distances(oracle)

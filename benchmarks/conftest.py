"""Shared fixtures for the benchmark suite.

Suite selection: ``REPRO_SUITE=ci`` (default, fast) or ``REPRO_SUITE=paper``
(the full Fig. 3/Fig. 4 graph list; takes minutes).  Every benchmark file
regenerates one paper artifact — see the module docstrings and DESIGN.md §4.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import active_suite_name, suite_workloads, workload_for


def suite_params():
    """Parametrization over the active suite's workload names."""
    return [wl.name for wl in suite_workloads(active_suite_name())]


@pytest.fixture(scope="session", params=suite_params())
def workload(request):
    """One workload per suite graph (paper configuration: unit weights, Δ=1)."""
    return workload_for(request.param)


@pytest.fixture(scope="session")
def small_workload():
    """A single small workload for micro-benchmarks."""
    return workload_for("ci-rmat")

"""FIG3 — Figure 3: unfused (SuiteSparse-style) vs fused sequential runtime.

Paper claim: operation fusion yields a 3.7× average improvement over the
functionally-equivalent unfused GraphBLAS implementation, across graphs
sorted by ascending node count.

Run::

    pytest benchmarks/bench_fig3_unfused_vs_fused.py --benchmark-only
    REPRO_SUITE=paper pytest benchmarks/bench_fig3_unfused_vs_fused.py --benchmark-only

The same series with the figure-shaped rendering: ``python -m repro fig3``.
"""

from __future__ import annotations

from repro.sssp.fused import fused_delta_stepping
from repro.sssp.graphblas_sssp import graphblas_delta_stepping


def bench_unfused_graphblas(benchmark, workload):
    """Fig. 3 series 'SuiteSparse' — one GraphBLAS call per algorithm step."""
    benchmark.group = f"fig3:{workload.name}"
    result = benchmark.pedantic(
        lambda: graphblas_delta_stepping(workload.graph, workload.source, workload.delta),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.num_reached > 1


def bench_fused(benchmark, workload):
    """Fig. 3 series 'Fused C impl.' — fused kernels, no temporaries."""
    benchmark.group = f"fig3:{workload.name}"
    result = benchmark.pedantic(
        lambda: fused_delta_stepping(workload.graph, workload.source, workload.delta),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.num_reached > 1


def bench_fig3_speedup_summary(benchmark, workload):
    """Convenience: measures the fused run and records the unfused/fused
    ratio as extra info (the figure's headline series)."""
    from repro.bench.timing import time_callable

    unfused = time_callable(
        lambda: graphblas_delta_stepping(workload.graph, workload.source, workload.delta),
        repeats=2,
    )
    benchmark.group = f"fig3:{workload.name}"
    result = benchmark.pedantic(
        lambda: fused_delta_stepping(workload.graph, workload.source, workload.delta),
        rounds=3,
        iterations=1,
    )
    fused_best = benchmark.stats.stats.min
    benchmark.extra_info["unfused_ms"] = unfused.best_ms
    benchmark.extra_info["fused_speedup"] = unfused.best / fused_best
    assert unfused.best / fused_best > 1.0, "fusion should win (paper: 3.7x avg)"
    assert result.num_reached > 1
